"""Tests for the service layer: write buffer, spare pool, telemetry,
health machine, memory array, controller pipeline, and the load generator's
cross-worker determinism contract."""

import json
import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, RetiredBlockError
from repro.pcm.lifetime import FixedLifetime, NormalLifetime
from repro.pcm.writebuffer import WriteBuffer
from repro.remap.pool import SparePool
from repro.schemes.base import WriteReceipt
from repro.schemes.ideal import NoProtectionScheme
from repro.service import (
    BlockHealth,
    HealthTracker,
    Histogram,
    MemoryArray,
    ServiceController,
    ServiceTelemetry,
    build_workload,
    run_load,
)
from repro.sim.roster import aegis_spec, ecp_spec


def ones(n_bits=32):
    return np.ones(n_bits, dtype=np.uint8)


def patterned(rng, n_bits=32):
    return rng.integers(0, 2, n_bits, dtype=np.uint8)


class TestWriteBuffer:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WriteBuffer(0)

    def test_coalesce_keeps_first_enqueue_order(self):
        buffer = WriteBuffer(8)
        assert buffer.put(3, ones()) is False
        buffer.put(5, ones())
        assert buffer.put(3, np.zeros(32, dtype=np.uint8)) is True  # coalesces
        addresses, payloads = buffer.drain()
        assert addresses.tolist() == [3, 5]  # CAM update, not re-enqueue
        assert payloads[0].sum() == 0  # last payload wins
        assert buffer.coalesced == 1 and buffer.enqueued == 3

    def test_store_to_load_forwarding_is_a_read_only_view(self):
        buffer = WriteBuffer(4)
        payload = ones()
        buffer.put(7, payload)
        got = buffer.lookup(7)
        assert np.array_equal(got, payload)
        assert not got.flags.writeable  # forwarded without a copy, but frozen
        with pytest.raises(ValueError):
            got[0] = 0
        assert buffer.lookup(7)[0] == 1
        assert buffer.lookup(9) is None
        assert buffer.read_hits == 2

    def test_payload_is_copied_on_put(self):
        buffer = WriteBuffer(4)
        payload = ones()
        buffer.put(1, payload)
        payload[0] = 0
        assert buffer.lookup(1)[0] == 1

    def test_drained_payloads_do_not_alias_the_store(self):
        buffer = WriteBuffer(4)
        buffer.put(2, ones())
        _, payloads = buffer.drain()
        buffer.put(9, np.zeros(32, dtype=np.uint8))  # reuses the columnar row
        assert payloads[0].sum() == 32

    def test_full_signals_at_capacity(self):
        buffer = WriteBuffer(2)
        buffer.put(0, ones())
        assert not buffer.full
        buffer.put(1, ones())
        assert buffer.full
        buffer.put(0, ones())  # coalescing does not overflow
        assert len(buffer) == 2
        buffer.drain()
        assert not buffer.full and len(buffer) == 0
        assert buffer.drains == 1
        addresses, payloads = buffer.drain()  # empty drain is free
        assert addresses.size == 0 and payloads.shape == (0, 32)
        assert buffer.drains == 1


class TestSparePool:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SparePool(0)
        with pytest.raises(ConfigurationError):
            SparePool(4, free=[9])

    def test_allocates_until_exhausted(self, rng):
        from repro.pcm.wear import PerfectWearLeveling

        pool = SparePool(3)
        policy = PerfectWearLeveling()
        got = {pool.allocate(i, policy, rng) for i in range(3)}
        assert got == {0, 1, 2}
        assert pool.remaining == 0
        assert pool.allocate(3, policy, rng) is None  # exhaustion, not an error
        assert pool.allocations == 3


class TestHistogram:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Histogram(())
        with pytest.raises(ConfigurationError):
            Histogram((3, 1))

    def test_observe_and_overflow(self):
        hist = Histogram((10, 20))
        for value in (5, 15, 999):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]  # last is the overflow bucket
        assert hist.total == 3
        assert hist.mean == pytest.approx((5 + 15 + 999) / 3)

    def test_quantile_is_bucket_upper_bound(self):
        hist = Histogram((10, 20, 40))
        for value in (1, 2, 3, 15, 35):
            hist.observe(value)
        assert hist.quantile(0.5) == 10.0
        assert hist.quantile(1.0) == 40.0
        assert Histogram((10,)).quantile(0.5) == 0.0

    def test_merge_requires_same_edges(self):
        a, b = Histogram((10, 20)), Histogram((10, 20))
        a.observe(5)
        b.observe(25)
        a.merge(b)
        assert a.counts == [1, 0, 1] and a.total == 2
        with pytest.raises(ConfigurationError):
            a.merge(Histogram((1, 2)))

    def test_quantile_in_overflow_bucket_is_unbounded(self):
        # regression: the old implementation clamped the index into the
        # edges and reported the *last finite edge* for tail quantiles,
        # silently under-stating any distribution with overflow mass
        hist = Histogram((10, 20, 40))
        for value in (5, 100, 200, 300):
            hist.observe(value)
        assert math.isinf(hist.quantile(0.5))
        assert math.isinf(hist.quantile(1.0))
        assert hist.quantile_label(0.75) == ">40"
        assert hist.quantile(0.25) == 10.0

    def test_quantile_zero_rank_clamped_to_first_observation(self):
        hist = Histogram((10, 20, 40))
        hist.observe(15)
        assert hist.quantile(0.0) == 20.0


class TestServiceTelemetry:
    def test_receipt_lands_in_histograms_and_counters(self):
        telemetry = ServiceTelemetry()
        receipt = WriteReceipt(
            cell_writes=40, verification_reads=2, repartitions=1, inversion_writes=1
        )
        telemetry.record_receipt(receipt)
        assert telemetry.counters["cell_writes_total"] == 40
        assert telemetry.service_cost.total == 1
        assert telemetry.latency.mean == pytest.approx(5.0)  # 1 + 2 + 1 + 1

    def test_merge_is_order_insensitive_for_snapshot_counts(self):
        def shard(n):
            t = ServiceTelemetry()
            t.count("writes", n)
            t.service_cost.observe(10 * n)
            t.emit("remap", op=n)
            return t

        forward, backward = ServiceTelemetry(), ServiceTelemetry()
        forward.merge(shard(1), shard=0)
        forward.merge(shard(2), shard=1)
        backward.merge(shard(2), shard=1)
        backward.merge(shard(1), shard=0)
        fwd, bwd = forward.snapshot(), backward.snapshot()
        assert fwd["counters"] == bwd["counters"]
        assert fwd["service_cost"] == bwd["service_cost"]
        assert fwd["events_logged"] == bwd["events_logged"] == 2
        assert forward.events[0]["shard"] == 0  # merge tags event provenance

    def test_snapshot_has_no_wallclock(self):
        telemetry = ServiceTelemetry()
        telemetry.count("writes")
        flat = json.dumps(telemetry.snapshot())
        assert "time" not in flat and "elapsed" not in flat

    def test_write_jsonl(self, tmp_path):
        telemetry = ServiceTelemetry()
        telemetry.emit("retire", op=3, block=1)
        path = tmp_path / "events.jsonl"
        assert telemetry.write_jsonl(str(path)) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"event": "retire", "op": 3, "block": 1}
        assert lines[1]["event"] == "final_snapshot"

    def test_event_ring_caps_memory(self):
        # regression: the event log used to grow without bound; it is now
        # a ring that drops the oldest events and counts the drops
        telemetry = ServiceTelemetry(event_cap=3)
        for op in range(10):
            telemetry.emit("tick", op=op)
        assert len(telemetry.events) == 3
        assert [event["op"] for event in telemetry.events] == [7, 8, 9]
        assert telemetry.events_dropped == 7
        assert telemetry.snapshot()["events_dropped"] == 7

    def test_event_ring_cap_respected_across_merge(self):
        merged = ServiceTelemetry(event_cap=4)
        for shard in range(2):
            t = ServiceTelemetry(event_cap=4)
            for op in range(3):
                t.emit("tick", op=op)
            merged.merge(t, shard=shard)
        assert len(merged.events) == 4
        assert merged.events_dropped == 2


class TestHealthTracker:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HealthTracker(0, 1)
        with pytest.raises(ConfigurationError):
            HealthTracker(1, 0)

    def test_transitions_are_monotonic(self):
        telemetry = ServiceTelemetry()
        tracker = HealthTracker(3, 3, telemetry=telemetry)
        assert tracker.observe_faults(0, 2) is BlockHealth.HEALTHY
        assert tracker.observe_faults(0, 3) is BlockHealth.DEGRADED
        tracker.retire(0)
        assert tracker.observe_faults(0, 0) is BlockHealth.RETIRED  # never heals
        tracker.retire(0)  # idempotent
        assert tracker.observe_faults(1, 5) is BlockHealth.DEGRADED
        assert telemetry.counters == {"blocks_degraded": 2, "blocks_retired": 1}
        assert tracker.summary() == {"healthy": 1, "degraded": 1, "retired": 1}


class LongLife(FixedLifetime):
    """Cells that never wear out: failures come only from injected faults."""

    def __init__(self):
        super().__init__(10**9)


def small_array(n_addresses=3, spares=2, **kwargs):
    return MemoryArray(
        n_addresses,
        32,
        NoProtectionScheme,
        spares=spares,
        lifetime_model=LongLife(),
        rng=np.random.default_rng(11),
        **kwargs,
    )


def kill_block(array, physical):
    """Inject a stuck-at-0 fault, so writing all-ones must fail."""
    array.blocks[physical].cells.inject_fault(0, stuck_value=0)


class TestMemoryArray:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            small_array(n_addresses=0)
        with pytest.raises(ConfigurationError):
            small_array(spares=-1)
        with pytest.raises(ConfigurationError):
            small_array().read(99)

    def test_read_after_write(self, rng):
        array = small_array()
        payload = patterned(rng)
        array.write(0, payload)
        assert np.array_equal(array.read(0), payload)

    def test_unwritten_address_reads_zeros(self):
        array = small_array()
        assert array.read(2).sum() == 0
        assert not array.is_mapped(2)

    def test_remap_survives_block_failure(self, rng):
        array = small_array()
        array.write(0, patterned(rng))
        before = array.physical_of(0)
        kill_block(array, before)
        receipt = array.write(0, ones())  # stuck-at-0 vs all-ones: must remap
        after = array.physical_of(0)
        assert after != before
        assert np.array_equal(array.read(0), ones())
        assert array.health.state_of(before) is BlockHealth.RETIRED
        assert array.telemetry.counters["remaps"] == 1
        assert receipt.cell_writes > 0  # replay accounted on the merged receipt

    def test_pool_exhaustion_kills_only_that_address(self, rng):
        array = small_array(n_addresses=2, spares=1)  # 3 physical blocks
        array.write(0, ones())
        array.write(1, patterned(rng))
        for _ in range(2):  # burn the free block, then the pool is dry
            kill_block(array, array.physical_of(0))
            try:
                array.write(0, ones())
            except RetiredBlockError as err:
                # full placement context for cluster routing decisions
                assert err.address == 0
                assert err.array == array.name
                assert err.block is not None
                assert err.scheme == array.scheme_name
                break
        else:
            pytest.fail("spare exhaustion never surfaced")
        assert array.is_dead(0)
        with pytest.raises(RetiredBlockError) as excinfo:
            array.read(0)
        assert excinfo.value.address == 0
        assert excinfo.value.array == array.name
        assert excinfo.value.block is None  # already dead: no new block failed
        assert excinfo.value.scheme == array.scheme_name
        with pytest.raises(RetiredBlockError):
            array.write(0, ones())
        # the neighbour address keeps serving
        assert array.read(1) is not None
        array.write(1, ones())
        summary = array.capacity_summary()
        assert summary["dead_addresses"] == 1
        assert summary["live_addresses"] == 1
        assert summary["capacity_fraction"] == 0.5
        assert summary["free_blocks"] == 0

    def test_migrate_moves_data_and_spends_a_spare(self, rng):
        array = small_array(n_addresses=1, spares=1)
        payload = patterned(rng)
        array.write(0, payload)
        old = array.physical_of(0)
        assert array.migrate(0) is True
        assert array.physical_of(0) != old
        assert np.array_equal(array.read(0), payload)
        assert array.health.state_of(old) is BlockHealth.RETIRED
        assert array.migrate(0) is False  # pool dry: refuses, keeps data
        assert np.array_equal(array.read(0), payload)

    def test_degrade_threshold_from_hard_ftc(self):
        array = MemoryArray(
            2, 512, aegis_spec(9, 61, 512).make_controller,
            lifetime_model=LongLife(), rng=np.random.default_rng(5),
        )
        hard_ftc = array.blocks[0].scheme.hard_ftc
        assert array.health.degrade_threshold == hard_ftc - 1

    def test_fail_cache_records_discovered_faults(self, rng):
        from repro.pcm.failcache import DirectMappedFailCache, SequentialBlockKeys

        cache = DirectMappedFailCache(64, key_of=SequentialBlockKeys())
        array = small_array(fail_cache=cache)
        array.write(0, np.zeros(32, dtype=np.uint8))
        physical = array.physical_of(0)
        array.blocks[physical].cells.inject_fault(3, stuck_value=0)
        array.write(0, np.zeros(32, dtype=np.uint8))  # survives, fault recorded
        assert array.known_faults(0) == {3: 0}


class TestServiceController:
    def test_buffered_write_forwards_to_reads(self, rng):
        array = small_array()
        controller = ServiceController(array, buffer_capacity=4)
        payload = patterned(rng)
        controller.write(0, payload)
        assert np.array_equal(controller.read(0), payload)  # forwarded
        assert controller.telemetry.counters["buffer_read_hits"] == 1
        assert "writes_serviced" not in controller.telemetry.counters  # still pending
        controller.close()
        assert controller.telemetry.counters["writes_serviced"] == 1
        assert np.array_equal(array.read(0), payload)

    def test_coalescing_reduces_serviced_writes(self):
        array = small_array()
        controller = ServiceController(array, buffer_capacity=8)
        for _ in range(5):
            controller.write(1, ones())
        controller.close()
        counters = controller.telemetry.counters
        assert counters["write_requests"] == 5
        assert counters["writes_serviced"] == 1

    def test_full_buffer_drains_automatically(self, rng):
        array = small_array(n_addresses=3, spares=0)
        controller = ServiceController(array, buffer_capacity=2)
        controller.write(0, patterned(rng))
        controller.write(1, patterned(rng))  # hits capacity -> drain
        assert controller.telemetry.counters["writes_serviced"] == 2
        assert len(controller.buffer) == 0

    def test_lost_write_absorbed_unless_strict(self, rng):
        array = small_array(n_addresses=2, spares=1)  # 3 physical blocks
        array.write(1, patterned(rng))
        array.write(0, ones())
        for _ in range(array.pool.remaining + 2):  # drive address 0 to death
            if array.is_dead(0):
                break
            kill_block(array, array.physical_of(0))
            try:
                array.write(0, ones())
            except RetiredBlockError:
                break
        assert array.is_dead(0)
        controller = ServiceController(array, buffer_capacity=4)
        controller.write(0, ones())
        controller.write(1, ones())
        controller.close()  # dead address must not stall the drain
        counters = controller.telemetry.counters
        assert counters["writes_lost"] == 1
        assert np.array_equal(array.read(1), ones())
        strict = ServiceController(array, buffer_capacity=4, strict=True)
        strict.write(0, ones())
        with pytest.raises(RetiredBlockError):
            strict.close()


class TestLoadGenerator:
    def test_build_workload_validates(self):
        with pytest.raises(ConfigurationError):
            build_workload("nope")
        assert build_workload("zipf", {"alpha": 2.0}).alpha == 2.0

    def test_run_load_validates(self):
        spec = ecp_spec(2, 64)
        with pytest.raises(ConfigurationError):
            run_load(spec, ops=0)
        with pytest.raises(ConfigurationError):
            run_load(spec, ops=10, shards=0)
        with pytest.raises(ConfigurationError):
            run_load(spec, ops=10, read_fraction=1.5)

    def test_snapshot_invariant_across_worker_counts(self):
        spec = ecp_spec(2, 64)
        snapshots = [
            run_load(
                spec,
                ops=1500,
                seed=7,
                shards=2,
                workers=workers,
                n_addresses=12,
                spares=4,
                lifetime_model=NormalLifetime(mean_lifetime=25.0),
                snapshot_interval=250,
            ).snapshot
            for workers in (1, 2)
        ]
        assert snapshots[0] == snapshots[1]
        counters = snapshots[0]["counters"]
        assert counters.get("integrity_failures", 0) == 0
        assert counters["integrity_checked"] > 0
        assert counters["remaps"] > 0  # the degradation path actually ran
        assert snapshots[0]["capacity"]["total_addresses"] == 24

    def test_uneven_ops_split_is_worker_independent(self):
        report = run_load(
            ecp_spec(2, 64),
            ops=101,
            shards=3,
            workers=1,
            n_addresses=8,
            spares=2,
            lifetime_model=LongLife(),
        )
        assert sum(s["ops"] for s in report.per_shard) == 101
        assert report.snapshot["config"]["ops"] == 101
        assert report.ops_per_second > 0

    def test_telemetry_jsonl_export(self, tmp_path):
        report = run_load(
            ecp_spec(2, 64),
            ops=50,
            shards=1,
            workers=1,
            n_addresses=8,
            spares=2,
            lifetime_model=LongLife(),
            snapshot_interval=20,
        )
        path = tmp_path / "telemetry.jsonl"
        lines = report.write_telemetry_jsonl(str(path))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == lines
        assert records[-1]["event"] == "final_snapshot"
        assert any(r["event"] == "health_snapshot" for r in records)


class TestWiring:
    def test_experiment_registered(self):
        from repro.experiments import all_experiment_ids

        assert "ext-service" in all_experiment_ids()

    def test_top_level_exports(self):
        import repro

        for name in (
            "MemoryArray",
            "ServiceController",
            "ServiceTelemetry",
            "RetiredBlockError",
            "WriteBuffer",
            "BlockHealth",
        ):
            assert hasattr(repro, name)

    def test_cli_serve_bench_smoke(self, tmp_path, capsys):
        from repro.cli import main

        json_path = tmp_path / "snap.json"
        jsonl_path = tmp_path / "events.jsonl"
        rc = main(
            [
                "serve-bench",
                "--ops", "300",
                "--shards", "1",
                "--addresses", "8",
                "--spares", "2",
                "--endurance", "80",
                "--workers", "1",
                "--seed", "3",
                "--json", str(json_path),
                "--telemetry-jsonl", str(jsonl_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "read-after-write integrity: ok" in out
        snapshot = json.loads(json_path.read_text())
        assert snapshot["counters"].get("integrity_failures", 0) == 0
        assert jsonl_path.exists()
