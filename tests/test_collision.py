"""Tests for the pairwise collision-slope ROM."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collision import NO_COLLISION, CollisionROM, collision_rom_for
from repro.core.geometry import rectangle_for


@pytest.fixture
def rom(paper_rect) -> CollisionROM:
    return collision_rom_for(paper_rect)


class TestTable:
    def test_matches_geometry(self, paper_rect, rom):
        for o1 in range(paper_rect.n_bits):
            for o2 in range(paper_rect.n_bits):
                if o1 == o2:
                    continue
                expected = paper_rect.collision_slope(o1, o2)
                actual = rom.slope_of(o1, o2)
                assert actual == (NO_COLLISION if expected is None else expected)

    def test_symmetric(self, rom, paper_rect):
        n = paper_rect.n_bits
        for o1 in range(n):
            for o2 in range(o1 + 1, n):
                assert rom.slope_of(o1, o2) == rom.slope_of(o2, o1)

    def test_self_lookup_rejected(self, rom):
        with pytest.raises(ValueError):
            rom.slope_of(4, 4)

    def test_storage_bits(self):
        rom = collision_rom_for(rectangle_for(512, 61))
        assert rom.storage_bits == 512 * 512 * 6  # ceil(log2 61) = 6

    def test_cached(self, paper_rect):
        assert collision_rom_for(paper_rect) is collision_rom_for(paper_rect)


class TestPoisonedSlopes:
    def test_empty_sides(self, rom):
        assert rom.poisoned_slopes([], [1, 2]).size == 0
        assert rom.poisoned_slopes([3], []).size == 0

    def test_cross_pairs_only(self, rom, paper_rect):
        # slopes poisoned by W={0}, R={1,2} are exactly the pair collisions
        expected = set()
        for r in (1, 2):
            slope = paper_rect.collision_slope(0, r)
            if slope is not None:
                expected.add(slope)
        assert set(int(s) for s in rom.poisoned_slopes([0], [1, 2])) == expected

    def test_all_pairs_superset(self, rom):
        offsets = [0, 1, 7, 12, 20]
        all_pairs = set(int(s) for s in rom.poisoned_slopes_all_pairs(offsets))
        cross = set(int(s) for s in rom.poisoned_slopes(offsets[:2], offsets[2:]))
        assert cross <= all_pairs

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_poisoned_definition(self, data):
        rect = rectangle_for(64, 11)
        rom = collision_rom_for(rect)
        wrong = data.draw(
            st.lists(st.integers(0, 63), min_size=1, max_size=4, unique=True)
        )
        right = data.draw(
            st.lists(
                st.integers(0, 63).filter(lambda o: o not in wrong),
                min_size=1,
                max_size=4,
                unique=True,
            )
        )
        poisoned = set(int(s) for s in rom.poisoned_slopes(wrong, right))
        for slope in range(11):
            mixes = any(
                rect.group_of(w, slope) == rect.group_of(r, slope)
                for w in wrong
                for r in right
            )
            assert (slope in poisoned) == mixes


class TestFindRwSlope:
    def test_prefers_start(self, rom):
        assert rom.find_rw_slope([], [], start=4) == 4

    def test_skips_poisoned(self, rom, paper_rect):
        # W=0 and R=1 collide on exactly one slope; starting there must skip
        slope = paper_rect.collision_slope(0, 1)
        assert slope is not None
        found = rom.find_rw_slope([0], [1], start=slope)
        assert found != slope
        assert paper_rect.group_of(0, found) != paper_rect.group_of(1, found)

    def test_exhaustion_returns_none(self):
        # 3x3 rectangle: W fills column 0, R fills column 1 — the four
        # cross pairs poison all three slopes
        rect = rectangle_for(9, 3)
        rom = collision_rom_for(rect)
        assert rom.find_rw_slope([0, 3], [1, 4], start=0) is None
