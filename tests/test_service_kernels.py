"""Tests for the vectorized service drain (`repro/service/kernels.py`).

The headline property, mirroring ``tests/test_kernels.py`` one layer up:
``engine="vector"`` is a pure performance knob for the serving path.  For
every covered scheme the batched drain leaves the array, the telemetry
snapshot, and the sampled trace span trees byte-identical to the scalar
per-row pipeline — across seeds, worker counts, and drains where some
rows escalate to repartition/remap mid-batch.  Schemes without a service
kernel fall back to the scalar path transparently.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, RetiredBlockError
from repro.pcm.failcache import DirectMappedFailCache, SequentialBlockKeys
from repro.pcm.lifetime import FixedLifetime, NormalLifetime
from repro.service import (
    MemoryArray,
    ServiceController,
    kernel_for,
    resolve_engine,
    run_load,
)
from repro.sim.kernels import pack_rows_u64, popcount_rows_u64, xor_popcount_rows
from repro.sim.rng import rng_for
from repro.sim.roster import (
    aegis_rw_spec,
    aegis_spec,
    ecp_spec,
    hamming_spec,
    no_protection_spec,
    rdis_spec,
    safer_cache_spec,
    safer_spec,
)

#: every service-kernel family: XOR-mask (Aegis, SAFER, raw), pointer
#: replacement (ECP), and check-cell (Hamming)
KERNEL_SPECS = [
    aegis_spec(9, 61, 512),
    aegis_spec(17, 31, 512),
    ecp_spec(6, 512),
    safer_spec(64, 512),
    hamming_spec(512),
    no_protection_spec(512),
]

#: schemes the vector drain does not cover: replayed-history rewrites,
#: stateful caching policies, sampled checkers
FALLBACK_SPECS = [
    aegis_rw_spec(9, 61, 512),
    safer_cache_spec(64, 512),
    rdis_spec(512),
]

#: the sweep roster for the full load-generator equivalence runs
SWEEP_SPECS = [
    aegis_spec(9, 61, 512),
    ecp_spec(6, 512),
    safer_spec(64, 512),
    hamming_spec(512),
]

_IDS = lambda s: s.key  # noqa: E731


def _make_array(spec, *, engine, n_addresses=24, spares=6, lifetime=None):
    rng = rng_for(2013, 0, 77)
    return MemoryArray(
        n_addresses,
        spec.n_bits,
        spec.make_controller,
        spares=spares,
        lifetime_model=lifetime if lifetime is not None else FixedLifetime(10**9),
        fail_cache=DirectMappedFailCache(256, key_of=SequentialBlockKeys()),
        rng=rng,
        engine=engine,
    )


def _store_state(array):
    store = array.store
    return (
        store.stored.copy(),
        store.stuck.copy(),
        store.stuck_value.copy(),
        store.write_counts.copy(),
        array._map.copy(),
        sorted(array._dead),
        array.op_clock,
    )


def _assert_same_state(scalar_array, vector_array):
    for got, want in zip(_store_state(vector_array), _store_state(scalar_array)):
        if isinstance(got, np.ndarray):
            assert np.array_equal(got, want)
        else:
            assert got == want
    assert (
        vector_array.telemetry.metrics.snapshot()
        == scalar_array.telemetry.metrics.snapshot()
    )


class TestRowBitsetHelpers:
    def test_pack_rows_round_trip_popcount(self):
        rng = np.random.default_rng(7)
        rows = rng.integers(0, 2, (13, 300), dtype=np.uint8)
        counts = popcount_rows_u64(pack_rows_u64(rows))
        assert counts.tolist() == [int(row.sum()) for row in rows]

    def test_pack_rows_pads_to_word_boundary(self):
        rows = np.ones((3, 9), dtype=np.uint8)
        packed = pack_rows_u64(rows)
        assert packed.dtype == np.uint64
        assert popcount_rows_u64(packed).tolist() == [9, 9, 9]

    def test_pack_rows_rejects_vectors(self):
        with pytest.raises(ConfigurationError):
            pack_rows_u64(np.ones(8, dtype=np.uint8))

    def test_xor_popcount_counts_disagreements(self):
        a = np.array([[0, 1, 1, 0], [1, 1, 1, 1]], dtype=np.uint8)
        b = np.array([[0, 1, 0, 1], [1, 1, 1, 1]], dtype=np.uint8)
        assert xor_popcount_rows(a, b).tolist() == [2, 0]


class TestEngineResolution:
    def test_invalid_engine_rejected(self):
        spec = aegis_spec(9, 61, 512)
        with pytest.raises(ConfigurationError):
            _make_array(spec, engine="gpu")
        array = _make_array(spec, engine="auto")
        with pytest.raises(ConfigurationError):
            resolve_engine("gpu", array)

    @pytest.mark.parametrize("spec", KERNEL_SPECS, ids=_IDS)
    def test_auto_takes_the_kernel_when_covered(self, spec):
        array = _make_array(spec, engine="auto")
        assert kernel_for(array) is not None
        assert resolve_engine("auto", array) == "vector"
        assert resolve_engine("scalar", array) == "scalar"
        assert ServiceController(array).engine == "vector"

    @pytest.mark.parametrize("spec", FALLBACK_SPECS, ids=_IDS)
    def test_uncovered_schemes_fall_back_to_scalar(self, spec):
        array = _make_array(spec, engine="auto")
        assert kernel_for(array) is None
        assert resolve_engine("vector", array) == "scalar"
        assert ServiceController(array).engine == "scalar"

    def test_kernel_is_memoised_per_array(self):
        array = _make_array(aegis_spec(9, 61, 512), engine="auto")
        assert kernel_for(array) is kernel_for(array)

    def test_controller_inherits_the_array_engine(self):
        array = _make_array(aegis_spec(9, 61, 512), engine="scalar")
        assert ServiceController(array).engine == "scalar"
        assert ServiceController(array, engine="vector").engine == "vector"


def _drive(spec, engine, *, lifetime, ops=900, buffer_capacity=16, **kwargs):
    """Drive one controller with a deterministic write/read mix; returns
    the array after close() so callers can compare full state."""
    array = _make_array(spec, engine=engine, lifetime=lifetime)
    controller = ServiceController(
        array, buffer_capacity=buffer_capacity, **kwargs
    )
    rng = rng_for(2013, 1, 78)
    for _ in range(ops):
        address = int(rng.integers(0, 24))
        if array.is_dead(address):
            continue
        if rng.random() < 0.2:
            controller.read(address)
        else:
            controller.write(
                address, rng.integers(0, 2, spec.n_bits, dtype=np.uint8)
            )
    controller.close()
    return array


class TestDrainEquivalence:
    """Direct-controller sweeps: batch and scalar drains leave identical
    array matrices, map, dead set, op clock, and metrics."""

    @pytest.mark.parametrize("spec", SWEEP_SPECS, ids=_IDS)
    def test_healthy_traffic_is_bit_identical(self, spec):
        lifetime = FixedLifetime(10**9)
        scalar = _drive(spec, "scalar", lifetime=lifetime)
        vector = _drive(spec, "vector", lifetime=lifetime)
        assert ServiceController(vector).engine == "vector"
        _assert_same_state(scalar, vector)

    @pytest.mark.parametrize("spec", SWEEP_SPECS, ids=_IDS)
    @pytest.mark.parametrize("proactive", [False, True])
    def test_mid_batch_escalations_are_bit_identical(self, spec, proactive):
        # endurance low enough that drains mix fast rows with wear-out,
        # repartition walks, migrations, and spare remaps mid-batch
        lifetime = NormalLifetime(mean_lifetime=22.0)
        scalar = _drive(
            spec, "scalar", lifetime=lifetime, proactive_migration=proactive
        )
        vector = _drive(
            spec, "vector", lifetime=lifetime, proactive_migration=proactive
        )
        counters = scalar.telemetry.metrics.snapshot()["counters"]
        escalations = (
            counters.get("remaps", 0)
            + counters.get("migrations", 0)
            + counters.get("repartitions_total", 0)
        )
        assert escalations > 0  # escalations actually happened mid-drain
        _assert_same_state(scalar, vector)

    @pytest.mark.parametrize("spec", SWEEP_SPECS[:2], ids=_IDS)
    def test_strict_flush_raises_identically(self, spec):
        def run(engine):
            array = _make_array(
                spec,
                engine=engine,
                spares=0,
                lifetime=FixedLifetime(6),
            )
            controller = ServiceController(
                array, buffer_capacity=4, strict=True
            )
            rng = rng_for(2013, 2, 79)
            with pytest.raises(RetiredBlockError):
                for index in range(4000):
                    controller.write(
                        index % 16,
                        rng.integers(0, 2, spec.n_bits, dtype=np.uint8),
                    )
                controller.close()
            return array

        _assert_same_state(run("scalar"), run("vector"))


class TestLoadGeneratorSweep:
    """Full ``run_load`` equivalence: snapshots and trace JSONL across
    engines, seeds, and the 1/2/4 worker ladder."""

    _reference: dict = {}

    @classmethod
    def _run(cls, spec, seed, engine, workers, tmp_path, name):
        report = run_load(
            spec,
            ops=1200,
            seed=seed,
            shards=2,
            workers=workers,
            n_addresses=24,
            spares=8,
            workload="zipf",
            lifetime_model=NormalLifetime(mean_lifetime=40.0),
            buffer_capacity=8,
            engine=engine,
            trace_sample=7,
        )
        trace_path = tmp_path / f"{name}.jsonl"
        report.write_trace_jsonl(str(trace_path))
        return report.snapshot, trace_path.read_bytes()

    @classmethod
    def _reference_for(cls, spec, seed, tmp_path):
        key = (spec.key, seed)
        if key not in cls._reference:
            cls._reference[key] = cls._run(
                spec, seed, "scalar", 1, tmp_path, "reference"
            )
        return cls._reference[key]

    @pytest.mark.parametrize("spec", SWEEP_SPECS, ids=_IDS)
    @pytest.mark.parametrize("seed", [2013, 7])
    def test_vector_serial_matches_scalar(self, spec, seed, tmp_path):
        snapshot, trace = self._reference_for(spec, seed, tmp_path)
        got_snapshot, got_trace = self._run(
            spec, seed, "vector", 1, tmp_path, "vector"
        )
        assert got_snapshot == snapshot
        assert got_trace == trace

    @pytest.mark.parametrize("spec", SWEEP_SPECS, ids=_IDS)
    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_fanout_matches_serial_scalar(
        self, spec, engine, workers, tmp_path
    ):
        snapshot, trace = self._reference_for(spec, 2013, tmp_path)
        got_snapshot, got_trace = self._run(
            spec, 2013, engine, workers, tmp_path, f"{engine}-{workers}"
        )
        assert got_snapshot == snapshot
        assert got_trace == trace

    def test_fallback_scheme_runs_under_every_engine_label(self, tmp_path):
        spec = aegis_rw_spec(9, 61, 512)
        snapshot, trace = self._reference_for(spec, 2013, tmp_path)
        got_snapshot, got_trace = self._run(
            spec, 2013, "vector", 1, tmp_path, "fallback"
        )
        assert got_snapshot == snapshot
        assert got_trace == trace
