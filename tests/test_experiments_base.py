"""Tests for the experiment infrastructure (registry, memoisation, results)."""

import pytest

from repro.experiments.base import (
    REGISTRY,
    ExperimentResult,
    clear_study_cache,
    register,
    shared_page_studies,
)
from repro.sim.roster import ecp_spec


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_study_cache()
    yield
    clear_study_cache()


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            experiment_id="x",
            title="T",
            headers=("a", "b"),
            rows=((1, 2), (3, 4)),
            notes=("n1",),
        )

    def test_column(self):
        assert self.make().column("b") == [2, 4]

    def test_column_unknown_header(self):
        with pytest.raises(ValueError):
            self.make().column("zzz")

    def test_render_contains_notes(self):
        out = self.make().render()
        assert "note: n1" in out
        assert "## T" in out

    def test_dict_roundtrip(self):
        result = self.make()
        assert ExperimentResult.from_dict(result.to_dict()) == result


class TestRegister:
    def test_decorator_registers_and_returns(self):
        @register("zz-test-experiment")
        def runner(**_):
            return ExperimentResult("zz-test-experiment", "t", ("h",), ((1,),))

        try:
            assert REGISTRY["zz-test-experiment"] is runner
        finally:
            del REGISTRY["zz-test-experiment"]


class TestSharedStudies:
    def test_memoised_within_parameters(self):
        spec = ecp_spec(2, 512)
        first = shared_page_studies([spec], n_pages=3, seed=1)[0]
        second = shared_page_studies([spec], n_pages=3, seed=1)[0]
        assert first is second  # same object: no re-simulation

    def test_distinct_parameters_not_shared(self):
        spec = ecp_spec(2, 512)
        a = shared_page_studies([spec], n_pages=3, seed=1)[0]
        b = shared_page_studies([spec], n_pages=3, seed=2)[0]
        c = shared_page_studies([spec], n_pages=4, seed=1)[0]
        assert a is not b and a is not c

    def test_clear_cache(self):
        spec = ecp_spec(2, 512)
        a = shared_page_studies([spec], n_pages=3, seed=1)[0]
        clear_study_cache()
        b = shared_page_studies([spec], n_pages=3, seed=1)[0]
        assert a is not b
        assert a.faults.mean == b.faults.mean  # but deterministic content
