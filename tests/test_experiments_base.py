"""Tests for the experiment infrastructure (registry, memoisation, results)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.base import (
    ACCEPTED_OPTIONS,
    REGISTRY,
    ExperimentResult,
    clear_study_cache,
    dispatch,
    register,
    shared_page_studies,
)
from repro.sim.context import ExecContext
from repro.sim.roster import ecp_spec


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_study_cache()
    yield
    clear_study_cache()


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            experiment_id="x",
            title="T",
            headers=("a", "b"),
            rows=((1, 2), (3, 4)),
            notes=("n1",),
        )

    def test_column(self):
        assert self.make().column("b") == [2, 4]

    def test_column_unknown_header(self):
        with pytest.raises(ValueError):
            self.make().column("zzz")

    def test_render_contains_notes(self):
        out = self.make().render()
        assert "note: n1" in out
        assert "## T" in out

    def test_dict_roundtrip(self):
        result = self.make()
        assert ExperimentResult.from_dict(result.to_dict()) == result


class TestRegister:
    def test_decorator_registers_and_returns(self):
        @register("zz-test-experiment")
        def runner(ctx, *, depth=1):
            return ExperimentResult("zz-test-experiment", "t", ("h",), ((depth,),))

        try:
            assert REGISTRY["zz-test-experiment"] is runner
            assert ACCEPTED_OPTIONS["zz-test-experiment"] == frozenset({"depth"})
        finally:
            del REGISTRY["zz-test-experiment"]
            del ACCEPTED_OPTIONS["zz-test-experiment"]

    def test_rejects_var_keyword_catch_all(self):
        with pytest.raises(ConfigurationError, match="catch-all"):
            @register("zz-bad-kwargs")
            def runner(ctx, **_):
                raise AssertionError  # pragma: no cover

    def test_rejects_missing_ctx(self):
        with pytest.raises(ConfigurationError, match="first parameter 'ctx'"):
            @register("zz-no-ctx")
            def runner(depth=1):
                raise AssertionError  # pragma: no cover

    def test_rejects_exec_field_shadowing(self):
        with pytest.raises(ConfigurationError, match="owned by ExecContext"):
            @register("zz-shadow")
            def runner(ctx, *, seed=0):
                raise AssertionError  # pragma: no cover


class TestDispatch:
    @pytest.fixture(autouse=True)
    def probe_driver(self):
        @register("zz-probe")
        def runner(ctx, *, depth=1):
            return ExperimentResult(
                "zz-probe", "t", ("seed", "depth"), ((ctx.seed, depth),)
            )

        yield
        del REGISTRY["zz-probe"]
        del ACCEPTED_OPTIONS["zz-probe"]

    def test_unknown_option_raises(self):
        # the motivating bug: 'worker=4' used to run serially, silently
        with pytest.raises(ConfigurationError, match="worker"):
            dispatch("zz-probe", worker=4)

    def test_legacy_exec_kwargs_fold_into_ctx(self):
        result = dispatch("zz-probe", seed=99, workers=1, engine="scalar")
        assert result.rows == ((99, 1),)

    def test_common_scale_options_filtered_to_signature(self):
        # drivers without n_pages/trials still accept the CLI's bulk options
        result = dispatch("zz-probe", n_pages=5, trials=7, depth=3)
        assert result.rows == ((2013, 3),)

    def test_explicit_ctx_threads_through(self):
        result = dispatch("zz-probe", ctx=ExecContext(seed=41))
        assert result.rows == ((41, 1),)


class TestSharedStudies:
    def test_memoised_within_parameters(self):
        spec = ecp_spec(2, 512)
        first = shared_page_studies([spec], n_pages=3, seed=1)[0]
        second = shared_page_studies([spec], n_pages=3, seed=1)[0]
        assert first is second  # same object: no re-simulation

    def test_distinct_parameters_not_shared(self):
        spec = ecp_spec(2, 512)
        a = shared_page_studies([spec], n_pages=3, seed=1)[0]
        b = shared_page_studies([spec], n_pages=3, seed=2)[0]
        c = shared_page_studies([spec], n_pages=4, seed=1)[0]
        assert a is not b and a is not c

    def test_clear_cache(self):
        spec = ecp_spec(2, 512)
        a = shared_page_studies([spec], n_pages=3, seed=1)[0]
        clear_study_cache()
        b = shared_page_studies([spec], n_pages=3, seed=1)[0]
        assert a is not b
        assert a.faults.mean == b.faults.mean  # but deterministic content
