"""Tests for the batch Monte Carlo kernels (`repro/sim/kernels.py`).

The headline property: ``engine="vector"`` is a pure performance knob.
For every covered scheme the batched population advance returns results
bit-identical to the scalar checker loop — same death counts, same
lifetimes, same page studies — because both engines consume the same
``rng_for`` substreams and the batched scheduler replicates the scalar
tie-breaking exactly.  Schemes without a kernel fall back to the scalar
path transparently.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pcm.lifetime import FixedLifetime
from repro.sim import kernels
from repro.sim.block_sim import (
    block_lifetime,
    block_lifetime_study,
    failure_curve,
    faults_at_death,
)
from repro.sim.kernels import (
    HEAVY_TIE_FRACTION,
    MAX_SLOPE_BITS,
    batch_checker_for,
    death_indices,
    kernel_supported,
    resolve_engine,
    tie_fraction,
)
from repro.sim.page_sim import run_page_study, simulate_page, simulate_pages
from repro.sim.rng import rng_for
from repro.sim.roster import (
    aegis_rw_p_spec,
    aegis_spec,
    ecp_spec,
    hamming_spec,
    no_protection_spec,
    rdis_spec,
    safer_cache_spec,
    safer_spec,
)

#: every kernel family, plus rectangle variations and a smaller block size
KERNEL_SPECS = [
    aegis_spec(9, 61, 512),
    aegis_spec(17, 31, 512),
    aegis_spec(23, 23, 512),
    aegis_spec(9, 31, 256),
    ecp_spec(6, 512),
    ecp_spec(2, 256),
    safer_spec(64, 512),
    safer_spec(32, 512, policy="exhaustive"),
    hamming_spec(512),
    no_protection_spec(512),
]

#: schemes no kernel covers: sampled/stateful checkers, out-of-range Aegis
FALLBACK_SPECS = [
    aegis_spec(8, 71, 512),  # 71 slopes exceed the uint64 poisoned bitset
    aegis_rw_p_spec(9, 61, 9, 512),
    safer_cache_spec(64, 512),
    rdis_spec(512),
]

_IDS = lambda s: s.key  # noqa: E731


class TestEngineResolution:
    def test_invalid_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_engine("gpu", aegis_spec(9, 61, 512))

    def test_scalar_is_always_scalar(self):
        for spec in KERNEL_SPECS + FALLBACK_SPECS:
            assert resolve_engine("scalar", spec) == "scalar"

    @pytest.mark.parametrize("spec", KERNEL_SPECS, ids=_IDS)
    def test_covered_specs_resolve_to_vector(self, spec):
        assert kernel_supported(spec)
        assert resolve_engine("vector", spec) == "vector"
        assert resolve_engine("auto", spec) == "vector"

    @pytest.mark.parametrize("spec", FALLBACK_SPECS, ids=_IDS)
    def test_uncovered_specs_fall_back_to_scalar(self, spec):
        assert not kernel_supported(spec)
        assert resolve_engine("vector", spec) == "scalar"
        assert resolve_engine("auto", spec) == "scalar"

    def test_wide_aegis_exceeds_slope_bitset(self):
        spec = aegis_spec(8, 71, 512)
        assert spec.kernel[2] == 71 > MAX_SLOPE_BITS
        with pytest.raises(ConfigurationError):
            batch_checker_for(spec, 4)


class TestFailureCurveEquivalence:
    @pytest.mark.parametrize("spec", KERNEL_SPECS, ids=_IDS)
    @pytest.mark.parametrize("seed", [2013, 77])
    def test_curves_are_bit_identical(self, spec, seed):
        scalar = failure_curve(spec, trials=40, seed=seed, engine="scalar")
        vector = failure_curve(spec, trials=40, seed=seed, engine="vector")
        assert vector == scalar

    @pytest.mark.parametrize("spec", FALLBACK_SPECS, ids=_IDS)
    def test_fallback_specs_match_scalar_trivially(self, spec):
        scalar = failure_curve(spec, trials=10, seed=5, engine="scalar")
        vector = failure_curve(spec, trials=10, seed=5, engine="vector")
        assert vector == scalar

    @pytest.mark.parametrize(
        "spec",
        [aegis_spec(9, 61, 512), ecp_spec(6, 512), safer_spec(64, 512)],
        ids=_IDS,
    )
    def test_death_histogram_matches_scalar_loop(self, spec):
        trials, seed = 60, 2013
        positions = np.stack(
            [rng_for(seed, t).permutation(spec.n_bits) for t in range(trials)]
        )
        batched = death_indices(spec, positions)
        looped = np.array(
            [faults_at_death(spec, rng_for(seed, t)) for t in range(trials)]
        )
        assert batched.tolist() == looped.tolist()
        assert np.bincount(batched).tolist() == np.bincount(looped).tolist()


class TestLifetimeEquivalence:
    @pytest.mark.parametrize("spec", KERNEL_SPECS, ids=_IDS)
    def test_study_is_bit_identical(self, spec):
        scalar = block_lifetime_study(spec, trials=25, seed=3, engine="scalar")
        vector = block_lifetime_study(spec, trials=25, seed=3, engine="vector")
        assert vector == scalar

    @pytest.mark.parametrize("seed", [0, 9, 41])
    def test_single_block_matches_scalar(self, seed):
        spec = aegis_spec(9, 61, 512)
        scalar = block_lifetime(spec, rng_for(seed, 0), engine="scalar")
        vector = block_lifetime(spec, rng_for(seed, 0), engine="vector")
        assert vector == scalar

    def test_fixed_lifetime_ties_stay_identical(self):
        """FixedLifetime makes every death time tie exactly; the heavy-tie
        pre-screen must route it to the scalar scheduler, unchanged."""
        model = FixedLifetime(mean_lifetime=1e4)
        for spec in (aegis_spec(9, 61, 512), safer_spec(64, 512)):
            scalar = block_lifetime_study(
                spec, trials=6, seed=1, lifetime_model=model, engine="scalar"
            )
            vector = block_lifetime_study(
                spec, trials=6, seed=1, lifetime_model=model, engine="vector"
            )
            assert vector == scalar


class TestPageEquivalence:
    @pytest.mark.parametrize("spec", KERNEL_SPECS, ids=_IDS)
    @pytest.mark.parametrize("seed", [17, 2013])
    def test_page_study_is_bit_identical(self, spec, seed):
        scalar = run_page_study(
            spec, n_pages=4, blocks_per_page=4, seed=seed, engine="scalar"
        )
        vector = run_page_study(
            spec, n_pages=4, blocks_per_page=4, seed=seed, engine="vector"
        )
        assert vector.results == scalar.results
        assert vector.lifetime == scalar.lifetime
        assert vector.faults == scalar.faults
        assert vector.baseline_lifetime == scalar.baseline_lifetime

    def test_single_page_matches_scalar(self):
        spec = aegis_spec(9, 61, 512)
        for seed in (1, 2, 3):
            scalar = simulate_page(spec, 6, rng_for(seed, 0), engine="scalar")
            vector = simulate_page(spec, 6, rng_for(seed, 0), engine="vector")
            assert vector == scalar

    def test_batched_pages_match_per_page_calls(self):
        spec = safer_spec(64, 512)
        batched = simulate_pages(spec, 4, range(5), 7)
        single = [simulate_page(spec, 4, rng_for(7, page)) for page in range(5)]
        assert batched == single

    def test_engine_composes_with_workers(self):
        """engine and workers multiply: pooled vector == serial scalar."""
        spec = aegis_spec(9, 61, 512)
        reference = run_page_study(
            spec, n_pages=6, blocks_per_page=4, seed=29, workers=1, engine="scalar"
        )
        pooled = run_page_study(
            spec, n_pages=6, blocks_per_page=4, seed=29, workers=3, engine="vector"
        )
        assert pooled.results == reference.results

    def test_fixed_lifetime_page_ties_stay_identical(self):
        model = FixedLifetime(mean_lifetime=1e4)
        spec = aegis_spec(9, 61, 512)
        scalar = run_page_study(
            spec,
            n_pages=2,
            blocks_per_page=3,
            seed=11,
            lifetime_model=model,
            engine="scalar",
        )
        vector = run_page_study(
            spec,
            n_pages=2,
            blocks_per_page=3,
            seed=11,
            lifetime_model=model,
            engine="vector",
        )
        assert vector.results == scalar.results


class TestTieScreen:
    def test_all_equal_sample_is_heavy(self):
        assert tie_fraction(np.full(512, 3.0)) == 1.0 > HEAVY_TIE_FRACTION

    def test_distinct_sample_is_light(self):
        assert tie_fraction(np.arange(512, dtype=float)) == 0.0

    def test_batched_rows(self):
        base = np.stack([np.full(8, 2.0), np.arange(8, dtype=float)])
        assert tie_fraction(base) == 0.5


class TestCompaction:
    @pytest.mark.parametrize(
        "spec",
        [
            aegis_spec(9, 61, 512),
            ecp_spec(6, 512),
            safer_spec(64, 512),
            safer_spec(32, 512, policy="exhaustive"),
            hamming_spec(512),
        ],
        ids=_IDS,
    )
    def test_compacted_checker_tracks_full_checker(self, spec):
        """Dropping retired rows mid-run must not disturb the survivors."""
        trials, n_bits = 8, spec.n_bits
        positions = np.stack(
            [rng_for(99, t).permutation(n_bits) for t in range(trials)]
        )
        full = batch_checker_for(spec, trials)
        compacted = batch_checker_for(spec, trials)
        active = np.ones(trials, dtype=bool)
        keep = np.array([True, False, True, True, False, True, True, False])
        for step in range(12):
            column = np.ascontiguousarray(positions[:, step])
            alive_full = full.add_faults(column, active)
            if step < 5:
                alive_part = compacted.add_faults(column, active)
                assert alive_part.tolist() == alive_full.tolist()
            else:
                alive_part = compacted.add_faults(column[keep], active[keep])
                assert alive_part.tolist() == alive_full[keep].tolist()
            if step == 4:
                compacted.compact(keep)
                assert compacted.n_trials == int(keep.sum())
