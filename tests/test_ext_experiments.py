"""Smoke and shape tests for the extension experiments, plus JSON round-trip."""

import json

import pytest

from repro.experiments import (
    ExperimentResult,
    all_experiment_ids,
    clear_study_cache,
    run_experiment,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_study_cache()
    yield
    clear_study_cache()


class TestRegistration:
    def test_extensions_registered(self):
        ids = all_experiment_ids()
        for ext in ("ext-memblock", "ext-payg", "ext-pairing", "ext-softftc",
                    "ext-writecost"):
            assert ext in ids
        assert ids.index("fig13") < ids.index("ext-memblock")


class TestExtMemblock:
    def test_same_ordering_smaller_magnitudes(self):
        result = run_experiment("ext-memblock", n_pages=8, seed=3)
        faults = dict(
            zip(result.column("Scheme"), result.column("Faults/256B block"))
        )
        assert faults["Aegis 9x61"] > faults["SAFER64"] > faults["ECP6"]
        assert faults["Aegis 9x61"] < 150  # ~1/64th of the 4 KB numbers


class TestExtPayg:
    def test_pool_sweep_monotone(self):
        result = run_experiment(
            "ext-payg", n_pages=6, seed=3, pool_fractions=(0.25, 1.0)
        )
        payg_rows = [r for r in result.rows if str(r[0]).startswith("PAYG")]
        assert len(payg_rows) == 2
        assert payg_rows[1][2] > payg_rows[0][2]  # capacity grows with pool
        assert payg_rows[1][1] > payg_rows[0][1]  # and so does overhead


class TestExtPairing:
    def test_gain_non_negative(self):
        result = run_experiment("ext-pairing", n_pages=8, seed=3)
        assert all(g >= 0 for g in result.column("Pairing gain"))


class TestExtSoftFtc:
    def test_analytic_tracks_monte_carlo(self):
        result = run_experiment("ext-softftc", trials=150, seed=3)
        for row in result.rows:
            if row[1] == "E[soft FTC]":
                continue
            measured, analytic = float(row[2]), float(row[3])
            assert abs(measured - analytic) < 0.45  # same transition region


class TestExtBsweep:
    def test_monotone_capability(self):
        result = run_experiment("ext-bsweep", trials=40, seed=3,
                                b_values=(23, 61))
        soft = [float(v) for v in result.column("Soft FTC (measured)")]
        assert soft[1] > soft[0]
        assert result.column("Formation") == ["23x23", "9x61"]


class TestExtWriteCost:
    def test_single_pass_for_cache_variants(self):
        result = run_experiment(
            "ext-writecost", fault_counts=(0, 6), writes=10, trials=3, seed=3
        )
        for row in result.rows:
            label, faults = row[0], row[1]
            if "rw" in label or label.startswith("ECP"):
                assert row[3] == 1.0  # verify reads
                assert row[4] == 0.0  # inversion writes


class TestExtLatency:
    def test_cache_assisted_flat_latency(self):
        result = run_experiment(
            "ext-latency", fault_counts=(0, 8), writes=8, trials=2, seed=3
        )
        latency = {(r[0], r[1]): float(r[2]) for r in result.rows}
        assert latency[("Aegis-rw 9x61", 8)] == latency[("Aegis-rw 9x61", 0)]
        assert latency[("Aegis 9x61", 8)] > latency[("Aegis 9x61", 0)]
        assert latency[("Aegis-dw 9x61", 0)] == pytest.approx(810.0)


class TestExtFreep:
    def test_registered_and_runs(self):
        result = run_experiment("ext-freep", n_pages=4, seed=3, spare_counts=(0, 2))
        lifetimes = [float(v) for v in result.column("Page lifetime (writes)")]
        assert len(lifetimes) == 4  # two schemes x two spare budgets


class TestExtFullscale:
    def test_batch_population_shapes(self):
        result = run_experiment("ext-fullscale", n_pages=64, seed=3)
        faults = dict(zip(result.column("Scheme"), result.column("Faults/page")))
        assert faults["Aegis 9x61"] > faults["ECP6"]
        assert all(int(v) == 64 for v in result.column("Pages"))


class TestJsonRoundTrip:
    def test_to_from_dict(self):
        result = run_experiment("table1")
        payload = json.loads(json.dumps(result.to_dict()))
        restored = ExperimentResult.from_dict(payload)
        assert restored.headers == result.headers
        assert restored.rows == result.rows
        assert restored.render() == result.render()
