"""Tests for the device model and wear leveling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pcm.device import PCMDevice
from repro.pcm.lifetime import FixedLifetime
from repro.pcm.wear import PerfectWearLeveling, StartGapWearLeveling
from repro.schemes.ideal import NoProtectionScheme


def tiny_device(rng, n_pages=4, wear_leveling=None):
    return PCMDevice(
        n_pages,
        block_bits=64,
        blocks_per_page=2,
        scheme_factory=NoProtectionScheme,
        lifetime_model=FixedLifetime(4),
        wear_leveling=wear_leveling,
        rng=rng,
    )


class TestDeviceLifecycle:
    def test_initial_state(self, rng):
        device = tiny_device(rng)
        assert device.live_page_count == 4
        assert device.survival_rate == 1.0

    def test_runs_to_extinction(self, rng):
        device = tiny_device(rng)
        deaths = device.run_until_dead(max_writes=100_000)
        assert device.live_page_count == 0
        assert len(deaths) == 4
        assert deaths == sorted(deaths)

    def test_half_lifetime(self, rng):
        device = tiny_device(rng)
        assert device.half_lifetime() is None
        device.run_until_dead(max_writes=100_000)
        assert device.half_lifetime() == device.page_death_times[1]  # 2nd of 4

    def test_exhausted_device_rejects_writes(self, rng):
        device = tiny_device(rng)
        device.run_until_dead(max_writes=100_000)
        with pytest.raises(ConfigurationError):
            device.issue_write()

    def test_needs_pages(self, rng):
        with pytest.raises(ConfigurationError):
            PCMDevice(0, 64, 2, NoProtectionScheme, rng=rng)


class TestPerfectWearLeveling:
    def test_round_robin_over_live(self, rng):
        policy = PerfectWearLeveling()
        alive = np.array([True, False, True, True])
        picks = [policy.place(0, alive, rng) for _ in range(6)]
        assert picks == [0, 2, 3, 0, 2, 3]

    def test_logical_index_ignored(self, rng):
        policy = PerfectWearLeveling()
        alive = np.ones(4, dtype=bool)
        picks = [policy.place(3, alive, rng) for _ in range(4)]
        assert picks == [0, 1, 2, 3]  # round-robin regardless of target

    def test_no_live_pages(self, rng):
        policy = PerfectWearLeveling()
        with pytest.raises(ConfigurationError):
            policy.place(0, np.zeros(3, dtype=bool), rng)

    def test_uniform_aging(self, rng):
        # after many writes, every live page has nearly the same count
        device = PCMDevice(
            8, 64, 1, NoProtectionScheme,
            lifetime_model=FixedLifetime(10_000), rng=rng,
        )
        for _ in range(800):
            device.issue_write()
        counts = [page.writes_serviced for page in device.pages]
        assert max(counts) - min(counts) <= 1


class TestStartGap:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StartGapWearLeveling(1)
        with pytest.raises(ConfigurationError):
            StartGapWearLeveling(8, gap_interval=0)

    def test_gap_rotates(self, rng):
        policy = StartGapWearLeveling(8, gap_interval=1)
        initial_gap = policy.gap
        alive = np.ones(8, dtype=bool)
        for _ in range(3):
            policy.place(0, alive, rng)
        assert policy.gap != initial_gap

    def test_spreads_skewed_traffic(self, rng):
        """A single hot logical page must sweep across physical pages as
        the gap rotates — the whole point of Start-Gap."""
        policy = StartGapWearLeveling(8, gap_interval=2)
        alive = np.ones(8, dtype=bool)
        picks = [policy.place(0, alive, rng) for _ in range(4000)]
        counts = np.bincount(picks, minlength=8)
        assert (counts > 0).sum() == 8  # every physical page got traffic
        assert counts.max() < 3 * counts.mean()

    def test_skips_dead_pages(self, rng):
        policy = StartGapWearLeveling(4, gap_interval=2)
        alive = np.array([True, False, False, False])
        for logical in range(20):
            assert policy.place(logical, alive, rng) == 0


class TestNoWearLeveling:
    def test_identity_mapping(self, rng):
        from repro.pcm.wear import NoWearLeveling

        policy = NoWearLeveling()
        alive = np.ones(4, dtype=bool)
        assert [policy.place(i, alive, rng) for i in range(4)] == [0, 1, 2, 3]

    def test_spills_past_dead_page(self, rng):
        from repro.pcm.wear import NoWearLeveling

        policy = NoWearLeveling()
        alive = np.array([True, False, True, True])
        assert policy.place(1, alive, rng) == 2
