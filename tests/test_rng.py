"""Tests for deterministic RNG stream management."""

import numpy as np

from repro.sim.rng import rng_for, spawn_rngs


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(7, 4)
        assert len(rngs) == 4
        draws = [r.integers(0, 2**31) for r in rngs]
        assert len(set(draws)) == 4  # astronomically unlikely to collide

    def test_reproducible(self):
        a = [r.integers(0, 2**31) for r in spawn_rngs(7, 3)]
        b = [r.integers(0, 2**31) for r in spawn_rngs(7, 3)]
        assert a == b


class TestRngFor:
    def test_same_keys_same_stream(self):
        assert rng_for(1, 2, 3).integers(0, 2**31) == rng_for(1, 2, 3).integers(0, 2**31)

    def test_different_keys_differ(self):
        draws = {
            rng_for(1, *keys).integers(0, 2**31)
            for keys in [(0,), (1,), (0, 0), (0, 1), (2, 7)]
        }
        assert len(draws) == 5

    def test_different_seeds_differ(self):
        assert rng_for(1, 0).integers(0, 2**31) != rng_for(2, 0).integers(0, 2**31)

    def test_returns_generator(self):
        assert isinstance(rng_for(0), np.random.Generator)
