"""Cross-validation of the fast Monte Carlo checkers against the
bit-accurate controllers.

The whole evaluation rests on the checkers answering the same question the
controllers answer ("can this block still store arbitrary data?"), so for
each scheme family we drive the same fault arrival sequence into both and
compare verdicts:

* **static** checkers (Aegis, SAFER, ECP) must agree with the controller's
  worst case exactly: when the checker says dead, some data pattern must
  fail the controller, and when it says alive, every pattern must succeed
  (verified by sampling patterns and, where feasible, constructing the
  adversarial pattern).
* **sampled** checkers (Aegis-rw, RDIS, SAFER-cache) share the controller's
  data-dependence; we verify agreement pattern-by-pattern on the *same*
  fault sets.
"""

import numpy as np
import pytest

from repro.core.aegis import AegisScheme
from repro.core.aegis_rw import AegisRwScheme
from repro.core.formations import formation
from repro.core.geometry import rectangle_for
from repro.errors import UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.rdis import rdis_mask
from repro.schemes.safer import SaferScheme
from repro.sim.checkers import (
    AegisChecker,
    AegisDynamicChecker,
    AegisRwChecker,
    EcpChecker,
    HammingChecker,
    NoProtectionChecker,
    SaferCacheChecker,
    SaferChecker,
    SaferIncrementalChecker,
    _any_rdis_failure,
)
from tests.conftest import random_data


def feed_faults(checker, faults):
    """Feed (offset, stuck) pairs; return the index of death or None."""
    for i, (offset, stuck) in enumerate(faults):
        if not checker.add_fault(offset, stuck):
            return i
    return None


class TestAegisChecker:
    def test_alive_means_separable(self, rng):
        rect = rectangle_for(512, 31)
        for _ in range(20):
            checker = AegisChecker(rect)
            offsets = [int(o) for o in rng.choice(512, size=20, replace=False)]
            for offset in offsets:
                alive = checker.add_fault(offset, 0)
                separable = any(
                    len(
                        {rect.group_of(o, k) for o in checker.fault_offsets}
                    ) == len(checker.fault_offsets)
                    for k in range(rect.b_size)
                )
                assert alive == separable
                if not alive:
                    break

    def test_agrees_with_controller_worst_case(self, rng):
        """When the static checker declares death, the all-wrong data
        pattern must fail the real controller."""
        form = formation(23, 23, 512)
        for trial in range(10):
            stream = np.random.default_rng(trial)
            checker = AegisChecker(form.rect)
            cells = CellArray(512)
            stuck_values = {}
            death = None
            for offset in stream.permutation(512):
                offset = int(offset)
                stuck = int(stream.integers(0, 2))
                stuck_values[offset] = stuck
                cells.inject_fault(offset, stuck_value=stuck)
                if not checker.add_fault(offset, stuck):
                    death = offset
                    break
            assert death is not None
            controller = AegisScheme(cells, form)
            # adversarial data: every fault stuck at the wrong value
            data = np.zeros(512, dtype=np.uint8)
            for offset, stuck in stuck_values.items():
                data[offset] = 1 - stuck
            with pytest.raises(UncorrectableError):
                controller.write(data)

    def test_alive_controller_succeeds(self, rng):
        """While the checker says alive, the controller services any data."""
        form = formation(9, 61, 512)
        checker = AegisChecker(form.rect)
        cells = CellArray(512)
        scheme = AegisScheme(cells, form)
        for offset in rng.choice(512, size=14, replace=False):
            offset = int(offset)
            stuck = int(rng.integers(0, 2))
            cells.inject_fault(offset, stuck_value=stuck)
            if not checker.add_fault(offset, stuck):
                break
            for _ in range(3):
                payload = random_data(rng, 512)
                scheme.write(payload)
                assert np.array_equal(scheme.read(), payload)

    def test_group_members_under_current_slope(self, rng):
        rect = rectangle_for(512, 61)
        checker = AegisChecker(rect)
        checker.add_fault(100, 0)
        members = checker.group_members(100)
        slope = checker.current_slope()
        group = rect.group_of(100, slope)
        assert set(int(m) for m in members) == set(rect.group_members(group, slope))


class TestSaferCheckers:
    def test_exhaustive_checker_matches_controller(self):
        """The exhaustive checker dies exactly when no vector separates."""
        for trial in range(10):
            stream = np.random.default_rng(100 + trial)
            checker = SaferChecker(512, 32)
            cells = CellArray(512)
            controller = SaferScheme(cells, 32, policy="exhaustive")
            stuck_values = {}
            for offset in stream.permutation(512):
                offset = int(offset)
                stuck = int(stream.integers(0, 2))
                stuck_values[offset] = stuck
                cells.inject_fault(offset, stuck_value=stuck)
                alive = checker.add_fault(offset, stuck)
                if not alive:
                    # adversarial data: every fault mismatches on the first
                    # verification read, given the controller's current
                    # inversion state
                    mask = controller._inversion_mask()
                    data = np.zeros(512, dtype=np.uint8)
                    for o, s in stuck_values.items():
                        data[o] = (1 - s) ^ int(mask[o])
                    with pytest.raises(UncorrectableError):
                        controller.write(data)
                    break
                payload = stream.integers(0, 2, 512, dtype=np.uint8)
                controller.write(payload)
                assert np.array_equal(controller.read(), payload)

    def test_incremental_never_outlives_exhaustive(self):
        for trial in range(10):
            stream = np.random.default_rng(200 + trial)
            faults = [
                (int(o), int(stream.integers(0, 2)))
                for o in stream.permutation(512)[:40]
            ]
            d_inc = feed_faults(SaferIncrementalChecker(512, 32), faults)
            d_exh = feed_faults(SaferChecker(512, 32), faults)
            assert d_exh is None or d_inc is not None
            if d_inc is not None and d_exh is not None:
                assert d_inc <= d_exh

    def test_incremental_checker_conservative_vs_controller(self):
        """The static incremental checker treats any same-group fault pair
        as a collision; the live controller can do better when both faults
        happen to be the same type for the written data (inverting the
        group fixes both).  So the checker must never declare death *after*
        the controller dies on the same fault order."""
        for trial in range(5):
            stream = np.random.default_rng(300 + trial)
            faults = [
                (int(o), 1) for o in stream.permutation(512)[:30]
            ]  # all stuck at 1
            checker = SaferIncrementalChecker(512, 32)
            checker_death = feed_faults(checker, faults)
            cells = CellArray(512)
            controller = SaferScheme(cells, 32, policy="incremental")
            controller_death = None
            zeros = np.zeros(512, dtype=np.uint8)  # every fault is W
            for i, (offset, stuck) in enumerate(faults):
                cells.inject_fault(offset, stuck_value=stuck)
                try:
                    controller.write(zeros)
                except UncorrectableError:
                    controller_death = i
                    break
            assert checker_death is not None
            assert controller_death is None or controller_death >= checker_death


class TestSampledCheckers:
    def test_aegis_rw_checker_agrees_with_rom_condition(self, rng):
        """For a fixed fault set and pattern, the checker's per-pattern
        predicate must equal 'some slope has no W/R mixing'."""
        rect = rectangle_for(512, 23)
        checker = AegisRwChecker(rect, rng, samples=4)
        offsets = [int(o) for o in rng.choice(512, size=18, replace=False)]
        for offset in offsets:
            checker.add_fault(offset, 0)
        from repro.core.collision import collision_rom_for
        from repro.sim.checkers import _any_pattern_covers_all_slopes

        rom = collision_rom_for(rect)
        offs = np.asarray(checker.fault_offsets)
        matrix = rom._table[np.ix_(offs, offs)]
        for _ in range(30):
            wrong = rng.integers(0, 2, size=(1, offs.size), dtype=np.uint8).astype(bool)
            fails = _any_pattern_covers_all_slopes(matrix, wrong, rect.b_size)
            w = [int(o) for o, flag in zip(offs, wrong[0]) if flag]
            r = [int(o) for o, flag in zip(offs, wrong[0]) if not flag]
            assert fails == (rom.find_rw_slope(w, r) is None)

    def test_aegis_rw_controller_agrees_per_pattern(self, rng):
        """Pattern-level agreement with the real Aegis-rw controller."""
        form = formation(23, 23, 512)
        offsets = [int(o) for o in rng.choice(512, size=16, replace=False)]
        stuck = {o: int(rng.integers(0, 2)) for o in offsets}
        from repro.core.collision import collision_rom_for

        rom = collision_rom_for(form.rect)
        for _ in range(20):
            data = random_data(rng, 512)
            wrong = [o for o in offsets if stuck[o] != data[o]]
            right = [o for o in offsets if stuck[o] == data[o]]
            predicted_ok = rom.find_rw_slope(wrong, right) is not None
            cells = CellArray(512)
            for o in offsets:
                cells.inject_fault(o, stuck_value=stuck[o])
            controller = AegisRwScheme(cells, form)
            if predicted_ok:
                controller.write(data)
                assert np.array_equal(controller.read(), data)
            else:
                with pytest.raises(UncorrectableError):
                    controller.write(data)

    def test_rdis_vectorised_matches_scalar(self, rng):
        """The bitmask-vectorised RDIS predicate equals the reference
        rdis_mask construction for every sampled pattern."""
        rows = cols = 8
        for _ in range(30):
            n_faults = int(rng.integers(2, 10))
            offsets = rng.choice(64, size=n_faults, replace=False)
            stuck = rng.integers(0, 2, size=n_faults).astype(np.uint8)
            frows = offsets // cols
            fcols = offsets % cols
            data_bits = rng.integers(0, 2, size=(5, n_faults), dtype=np.uint8)
            fails_vec = _any_rdis_failure(frows, fcols, stuck, data_bits, 2)
            fails_ref = False
            for pattern in data_bits:
                data = np.zeros(64, dtype=np.uint8)
                data[offsets] = pattern
                if rdis_mask(dict(zip(map(int, offsets), map(int, stuck))), data, rows, cols, 2) is None:
                    fails_ref = True
            assert fails_vec == fails_ref


class TestSaferCacheChecker:
    def test_never_dies_before_plain_safer(self):
        """The cache only relaxes the collision criterion, so on the same
        fault order the cache checker must survive at least as long as the
        plain incremental checker."""
        for trial in range(8):
            stream = np.random.default_rng(500 + trial)
            faults = [
                (int(o), int(stream.integers(0, 2)))
                for o in stream.permutation(512)[:60]
            ]
            d_plain = feed_faults(SaferIncrementalChecker(512, 32), faults)
            d_cache = feed_faults(
                SaferCacheChecker(512, 32, np.random.default_rng(trial), samples=32),
                faults,
            )
            assert d_plain is not None
            assert d_cache is None or d_cache >= d_plain

    def test_vector_grows_only(self, rng):
        checker = SaferCacheChecker(512, 32, rng, samples=16)
        previous = checker.positions
        for offset in rng.permutation(512)[:20]:
            if not checker.add_fault(int(offset), int(rng.integers(0, 2))):
                break
            assert set(previous) <= set(checker.positions)
            previous = checker.positions

    def test_agrees_with_controller_per_pattern(self, rng):
        """Feed the same faults; when the checker dies, the controller with
        the same grown vector must fail on some sampled data pattern."""
        from repro.schemes.safer import grow_vector_for_mixing

        for trial in range(5):
            stream = np.random.default_rng(600 + trial)
            checker = SaferCacheChecker(
                512, 32, np.random.default_rng(trial), samples=64
            )
            stuck_values = {}
            for offset in stream.permutation(512):
                offset = int(offset)
                stuck = int(stream.integers(0, 2))
                stuck_values[offset] = stuck
                if not checker.add_fault(offset, stuck):
                    break
            # reproduce the kill: with the checker's final vector state,
            # some W/R split of these faults cannot be un-mixed
            offsets = checker.fault_offsets
            found_kill = False
            kill_rng = np.random.default_rng(trial + 1000)
            for _ in range(512):
                wrong_mask = kill_rng.integers(0, 2, size=len(offsets)).astype(bool)
                wrong = [o for o, w in zip(offsets, wrong_mask) if w]
                right = [o for o, w in zip(offsets, wrong_mask) if not w]
                if grow_vector_for_mixing(checker.positions, wrong, right, 5, 9) is None:
                    found_kill = True
                    break
            assert found_kill


class TestSimpleCheckers:
    def test_ecp_death_at_budget_plus_one(self):
        checker = EcpChecker(pointers=3)
        faults = [(i, 0) for i in range(10)]
        assert feed_faults(checker, faults) == 3  # 4th fault (index 3) kills

    def test_hamming_death_on_word_collision(self):
        rng = np.random.default_rng(0)
        checker = HammingChecker(512, rng)
        assert checker.add_fault(0, 0)     # word 0
        assert checker.add_fault(70, 1)    # word 1
        assert not checker.add_fault(63, 0)  # word 0 again -> dead

    def test_no_protection_dies_immediately(self):
        checker = NoProtectionChecker()
        assert not checker.add_fault(0, 1)

    def test_dead_checkers_stay_dead(self):
        for checker in (
            EcpChecker(1),
            NoProtectionChecker(),
            SaferIncrementalChecker(512, 2),
        ):
            faults = [(i, 0) for i in range(20)]
            death = feed_faults(checker, faults)
            assert death is not None
            assert not checker.add_fault(death + 100, 0)


class TestDynamicAblation:
    def test_dynamic_never_dies_before_static(self):
        rect = rectangle_for(512, 23)
        for trial in range(5):
            stream = np.random.default_rng(400 + trial)
            faults = [
                (int(o), int(stream.integers(0, 2)))
                for o in stream.permutation(512)[:40]
            ]
            d_static = feed_faults(AegisChecker(rect), faults)
            d_dynamic = feed_faults(
                AegisDynamicChecker(rect, np.random.default_rng(trial), samples=16),
                faults,
            )
            assert d_static is not None
            if d_dynamic is not None:
                assert d_dynamic >= d_static
