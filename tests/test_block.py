"""Tests for the wear-driven protected block."""

import numpy as np
import pytest

from repro.core.aegis import AegisScheme
from repro.core.formations import formation
from repro.errors import UncorrectableError
from repro.pcm.block import ProtectedBlock
from repro.pcm.lifetime import FixedLifetime
from repro.schemes.ecp import EcpScheme
from repro.schemes.ideal import NoProtectionScheme


def aegis_factory(cells):
    return AegisScheme(cells, formation(9, 61, 512))


class TestWearLifecycle:
    def test_cells_die_after_endurance(self, rng):
        block = ProtectedBlock(
            512, aegis_factory, lifetime_model=FixedLifetime(3), rng=rng
        )
        assert block.fault_count == 0
        for _ in range(12):
            try:
                block.write_random()
            except UncorrectableError:
                break
        assert block.fault_count > 0

    def test_unprotected_block_dies_fast(self, rng):
        block = ProtectedBlock(
            512,
            NoProtectionScheme,
            lifetime_model=FixedLifetime(4),
            rng=rng,
        )
        writes = block.run_until_failure(max_writes=1000)
        # endurance 4 with ~50% flip probability: death within a few writes
        assert block.failed
        assert writes < 40

    def test_protected_outlives_unprotected(self, rng):
        seeds = [np.random.default_rng(s) for s in (1, 1)]
        unprotected = ProtectedBlock(
            512, NoProtectionScheme, lifetime_model=FixedLifetime(10), rng=seeds[0]
        )
        protected = ProtectedBlock(
            512, aegis_factory, lifetime_model=FixedLifetime(10), rng=seeds[1]
        )
        writes_unprotected = unprotected.run_until_failure(max_writes=100_000)
        writes_protected = protected.run_until_failure(max_writes=100_000)
        assert writes_protected > writes_unprotected

    def test_failure_is_permanent(self, rng):
        block = ProtectedBlock(
            512, lambda c: EcpScheme(c, 1), lifetime_model=FixedLifetime(2), rng=rng
        )
        block.run_until_failure(max_writes=10_000)
        assert block.failed
        with pytest.raises(Exception):
            block.write_random()

    def test_stats_accumulate(self, rng):
        block = ProtectedBlock(512, aegis_factory, rng=rng)
        for _ in range(5):
            block.write_random()
        assert block.stats.writes == 5
        assert block.stats.cell_writes > 0
        assert block.stats.verification_reads >= 5

    def test_read_returns_last_write(self, rng):
        block = ProtectedBlock(512, aegis_factory, rng=rng)
        data = rng.integers(0, 2, 512, dtype=np.uint8)
        block.write(data)
        assert np.array_equal(block.read(), data)
