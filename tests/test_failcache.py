"""Tests for the direct-mapped fail cache."""

import pytest

from repro.errors import ConfigurationError
from repro.pcm.cell import CellArray
from repro.pcm.failcache import DirectMappedFailCache


class TestFailCache:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            DirectMappedFailCache(capacity=0)

    def test_records_and_recalls(self):
        cache = DirectMappedFailCache(capacity=None)
        cells = CellArray(64)
        cells.inject_fault(3, stuck_value=1)
        assert cache.known_faults(cells) == {}  # cold
        cache.record(cells, 3, 1)
        assert cache.known_faults(cells) == {3: 1}

    def test_miss_statistics(self):
        cache = DirectMappedFailCache(capacity=None)
        cells = CellArray(64)
        cells.inject_fault(3, stuck_value=1)
        cells.inject_fault(9, stuck_value=0)
        cache.record(cells, 3, 1)
        known = cache.known_faults(cells)
        assert known == {3: 1}
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_blocks_are_isolated(self):
        cache = DirectMappedFailCache(capacity=None)
        cells_a = CellArray(64)
        cells_b = CellArray(64)
        cells_a.inject_fault(3, stuck_value=1)
        cells_b.inject_fault(3, stuck_value=0)
        cache.record(cells_a, 3, 1)
        assert cache.known_faults(cells_b) == {}

    def test_conflict_eviction(self):
        cache = DirectMappedFailCache(capacity=1)
        cells = CellArray(64)
        cells.inject_fault(3, stuck_value=1)
        cells.inject_fault(9, stuck_value=0)
        cache.record(cells, 3, 1)
        cache.record(cells, 9, 0)  # single set: must evict
        assert cache.evictions == 1
        assert cache.occupancy == 1
        # only one of the two faults is now known
        assert len(cache.known_faults(cells)) == 1

    def test_strict_mode_raises_on_miss(self):
        from repro.errors import CacheMissError

        cache = DirectMappedFailCache(capacity=None, strict=True)
        cells = CellArray(64)
        cells.inject_fault(3, stuck_value=1)
        with pytest.raises(CacheMissError):
            cache.known_faults(cells)
        cache.record(cells, 3, 1)
        assert cache.known_faults(cells) == {3: 1}

    def test_update_in_place_is_not_eviction(self):
        cache = DirectMappedFailCache(capacity=1)
        cells = CellArray(64)
        cells.inject_fault(3, stuck_value=1)
        cache.record(cells, 3, 1)
        cache.record(cells, 3, 1)
        assert cache.evictions == 0
