"""Tests for the formation catalogue and Table 1 cost formulas.

The paper's Table 1 numbers are asserted verbatim — these are the exact
published values, so this file is the reproduction's ground truth for the
closed-form half of the evaluation.
"""

import pytest

from repro.core.formations import (
    Formation,
    aegis_cost_for_ftc,
    aegis_hard_ftc,
    aegis_rw_cost_for_ftc,
    aegis_rw_hard_ftc,
    aegis_rw_p_cost_for_ftc,
    ecp_cost_for_ftc,
    formation,
    hamming_cost,
    pairs,
    rdis_cost,
    safer_cost,
    safer_cost_for_ftc,
    safer_group_count_for_ftc,
    safer_hard_ftc,
    slopes_needed,
    slopes_needed_rw,
    standard_formations,
)
from repro.errors import ConfigurationError

#: the paper's Table 1, verbatim (512-bit blocks, hard FTC 1..10)
PAPER_TABLE1 = {
    "ECP": [11, 21, 31, 41, 51, 61, 71, 81, 91, 101],
    "SAFER": [1, 7, 14, 22, 35, 55, 91, 159, 292, 552],
    "N": [1, 2, 4, 8, 16, 32, 64, 128, 256, 512],
    "Aegis": [23, 24, 25, 26, 27, 27, 28, 34, 43, 53],
    "Aegis-rw": [23, 24, 25, 26, 27, 27, 28, 28, 28, 34],
    "Aegis-rw-p": [1, 8, 9, 15, 15, 21, 21, 27, 27, 32],
}


class TestTable1:
    def test_ecp_row(self):
        assert [ecp_cost_for_ftc(f) for f in range(1, 11)] == PAPER_TABLE1["ECP"]

    def test_safer_row(self):
        assert [safer_cost_for_ftc(f) for f in range(1, 11)] == PAPER_TABLE1["SAFER"]

    def test_safer_group_counts(self):
        assert [safer_group_count_for_ftc(f) for f in range(1, 11)] == PAPER_TABLE1["N"]

    def test_aegis_row(self):
        assert [aegis_cost_for_ftc(f) for f in range(1, 11)] == PAPER_TABLE1["Aegis"]

    def test_aegis_rw_row(self):
        assert [aegis_rw_cost_for_ftc(f) for f in range(1, 11)] == PAPER_TABLE1["Aegis-rw"]

    def test_aegis_rw_p_row(self):
        assert [aegis_rw_p_cost_for_ftc(f) for f in range(1, 11)] == PAPER_TABLE1[
            "Aegis-rw-p"
        ]

    @pytest.mark.parametrize("func", [aegis_cost_for_ftc, ecp_cost_for_ftc])
    def test_ftc_must_be_positive(self, func):
        with pytest.raises(ConfigurationError):
            func(0)


class TestSlopeCounts:
    def test_pairs(self):
        assert [pairs(f) for f in range(1, 6)] == [0, 1, 3, 6, 10]

    def test_slopes_needed(self):
        # C(f,2) + 1; the paper: hard FTC 10 needs 46 slopes
        assert slopes_needed(10) == 46

    def test_slopes_needed_rw(self):
        # floor(f/2)*ceil(f/2) + 1; the paper: Aegis-rw needs only 26 for FTC 10
        assert slopes_needed_rw(10) == 26

    def test_rw_never_needs_more(self):
        for f in range(1, 30):
            assert slopes_needed_rw(f) <= slopes_needed(f)


class TestHardFtc:
    def test_paper_hard_ftcs(self):
        # B=23 tolerates 7 (C(7,2)+1 = 22 <= 23), B=61 tolerates 11
        assert aegis_hard_ftc(23) == 7
        assert aegis_hard_ftc(31) == 8
        assert aegis_hard_ftc(61) == 11
        assert aegis_hard_ftc(71) == 12

    def test_rw_hard_ftcs(self):
        assert aegis_rw_hard_ftc(23) == 9
        assert aegis_rw_hard_ftc(29) == 10

    def test_hard_ftc_definition(self):
        for b in (23, 29, 31, 61, 71):
            f = aegis_hard_ftc(b)
            assert slopes_needed(f) <= b < slopes_needed(f + 1)

    def test_safer_hard_ftc(self):
        assert safer_hard_ftc(32) == 6  # the paper's 512-bit example
        assert safer_hard_ftc(1) == 1

    def test_safer_hard_ftc_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            safer_hard_ftc(48)


class TestOtherCosts:
    def test_ecp_256(self):
        # the paper: ECP6 needs 55 bits for 256-bit blocks
        assert ecp_cost_for_ftc(6, 256) == 55

    def test_safer_cost_rejects_too_many_groups(self):
        with pytest.raises(ConfigurationError):
            safer_cost(1024, 512)

    def test_rdis_paper_overheads(self):
        # the paper: RDIS-3 is 25% of 256 bits and 19% of 512 bits
        assert rdis_cost(256) == 65
        assert rdis_cost(512) == 97
        assert rdis_cost(256) / 256 == pytest.approx(0.25, abs=0.005)
        assert rdis_cost(512) / 512 == pytest.approx(0.19, abs=0.005)

    def test_rdis_rejects_depth_one(self):
        with pytest.raises(ConfigurationError):
            rdis_cost(512, depth=1)

    def test_hamming_is_12_5_percent(self):
        assert hamming_cost(512) == 64
        assert hamming_cost(512) / 512 == 0.125

    def test_hamming_rejects_odd_sizes(self):
        with pytest.raises(ConfigurationError):
            hamming_cost(100)


class TestFormation:
    def test_aegis_overhead_paper_values(self):
        # figure annotations: 9x61 = 67 bits, 23x23 = 28, 17x31 = 36, 12x23 = 28
        assert formation(9, 61, 512).aegis_overhead_bits == 67
        assert formation(23, 23, 512).aegis_overhead_bits == 28
        assert formation(17, 31, 512).aegis_overhead_bits == 36
        assert formation(12, 23, 256).aegis_overhead_bits == 28

    def test_overhead_fractions_match_paper_quotes(self):
        # §3.2: Aegis 23x23 = 5.5%, 17x31 = 7%, 9x61 = 13% of 512 bits
        assert formation(23, 23, 512).aegis_overhead_bits / 512 == pytest.approx(
            0.055, abs=0.002
        )
        assert formation(17, 31, 512).aegis_overhead_bits / 512 == pytest.approx(
            0.07, abs=0.002
        )
        assert formation(9, 61, 512).aegis_overhead_bits / 512 == pytest.approx(
            0.13, abs=0.002
        )

    def test_wrong_width_rejected(self):
        with pytest.raises(ConfigurationError):
            formation(10, 61, 512)

    def test_standard_formations(self):
        names_512 = [f.name for f in standard_formations(512)]
        assert names_512 == ["23x23", "17x31", "9x61", "8x71"]
        names_256 = [f.name for f in standard_formations(256)]
        assert names_256 == ["16x17", "12x23", "9x31"]

    def test_standard_formations_unknown_size(self):
        with pytest.raises(ConfigurationError):
            standard_formations(128)

    def test_hard_ftc_properties(self, form_9x61):
        assert isinstance(form_9x61, Formation)
        assert form_9x61.hard_ftc == 11
        assert form_9x61.hard_ftc_rw >= form_9x61.hard_ftc

    def test_rw_p_overhead(self):
        form = formation(9, 61, 512)
        # slope counter (6) + p pointers x 6 + 2 flags
        assert form.aegis_rw_p_overhead_bits(9) == 6 * 10 + 2
        with pytest.raises(ConfigurationError):
            form.aegis_rw_p_overhead_bits(0)
