"""Tests for the workload generators and their interplay with wear leveling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pcm.device import PCMDevice
from repro.pcm.lifetime import FixedLifetime
from repro.pcm.wear import NoWearLeveling, StartGapWearLeveling
from repro.pcm.workload import (
    HotColdWorkload,
    TraceWorkload,
    UniformWorkload,
    ZipfWorkload,
)
from repro.schemes.ideal import NoProtectionScheme


class TestUniform:
    def test_covers_all_pages(self, rng):
        workload = UniformWorkload()
        draws = [workload.next_logical_page(8, rng) for _ in range(800)]
        counts = np.bincount(draws, minlength=8)
        assert counts.min() > 0
        assert counts.max() < 2 * counts.mean()


class TestZipf:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfWorkload(alpha=0)

    def test_skew_increases_with_alpha(self, rng):
        def top_share(alpha):
            workload = ZipfWorkload(alpha=alpha)
            draws = [workload.next_logical_page(32, rng) for _ in range(4000)]
            counts = np.sort(np.bincount(draws, minlength=32))[::-1]
            return counts[:3].sum() / counts.sum()

        assert top_share(2.0) > top_share(0.5)

    def test_in_range(self, rng):
        workload = ZipfWorkload(alpha=1.2)
        assert all(
            0 <= workload.next_logical_page(16, rng) < 16 for _ in range(200)
        )

    def test_repreps_on_population_change(self, rng):
        workload = ZipfWorkload(alpha=1.0)
        workload.next_logical_page(8, rng)
        assert 0 <= workload.next_logical_page(32, rng) < 32

    def test_cache_invalidation_on_growth(self, rng):
        """Growing ``n_pages`` mid-run must rebuild the CDF and permutation:
        every index in the larger space must stay reachable."""
        workload = ZipfWorkload(alpha=1.0)
        for _ in range(10):
            workload.next_logical_page(4, rng)
        small_cdf = workload._cdf
        draws = {workload.next_logical_page(64, rng) for _ in range(4000)}
        assert workload._cdf is not small_cdf
        assert workload._cdf.size == 64
        assert workload._perm.size == 64
        assert max(draws) >= 4  # pages beyond the old population are reachable
        assert all(0 <= d < 64 for d in draws)

    def test_cache_invalidation_on_shrink(self, rng):
        """Shrinking ``n_pages`` mid-run must never emit a stale out-of-range
        index from the old permutation."""
        workload = ZipfWorkload(alpha=1.0)
        for _ in range(10):
            workload.next_logical_page(64, rng)
        draws = [workload.next_logical_page(4, rng) for _ in range(500)]
        assert workload._cdf.size == 4
        assert all(0 <= d < 4 for d in draws)

    def test_rank_decoupled_from_index(self):
        """The permutation scatters popularity: the hottest page should not
        systematically be index 0 across independent preparations."""
        hottest = []
        for seed in range(12):
            rng = np.random.default_rng(seed)
            workload = ZipfWorkload(alpha=2.0)
            draws = [workload.next_logical_page(32, rng) for _ in range(800)]
            hottest.append(int(np.argmax(np.bincount(draws, minlength=32))))
        assert any(h != 0 for h in hottest)
        # rank 0 maps through the permutation, not the identity
        assert any(h != hottest[0] for h in hottest)


class TestTrace:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceWorkload([])
        with pytest.raises(ConfigurationError):
            TraceWorkload([1, -2, 3])

    def test_replays_and_wraps(self, rng):
        workload = TraceWorkload([3, 1, 2])
        draws = [workload.next_logical_page(8, rng) for _ in range(6)]
        assert draws == [3, 1, 2, 3, 1, 2]

    def test_reset_rewinds(self, rng):
        workload = TraceWorkload([5, 6, 7])
        first = [workload.next_logical_page(8, rng) for _ in range(2)]
        workload.reset()
        assert [workload.next_logical_page(8, rng) for _ in range(2)] == first

    def test_clone_has_independent_cursor(self, rng):
        """The fork-safety contract: clones share the immutable trace but
        never the replay cursor, so shards draw independent streams."""
        workload = TraceWorkload([1, 2, 3, 4])
        workload.next_logical_page(8, rng)
        workload.next_logical_page(8, rng)
        fresh = workload.clone()
        assert fresh.trace is workload.trace  # zero-copy share of the data
        assert fresh.next_logical_page(8, rng) == 1  # starts at the beginning
        assert workload.next_logical_page(8, rng) == 3  # original undisturbed

    def test_base_clone_deepcopies_state(self, rng):
        workload = ZipfWorkload(alpha=1.0)
        workload.next_logical_page(16, rng)
        fresh = workload.clone()
        assert fresh is not workload
        assert np.array_equal(fresh._perm, workload._perm)
        fresh._prepare(8, rng)
        assert workload._perm.size == 16  # original untouched


class TestHotCold:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HotColdWorkload(hot_fraction=0)
        with pytest.raises(ConfigurationError):
            HotColdWorkload(hot_share=1.0)

    def test_hot_pages_dominate(self, rng):
        workload = HotColdWorkload(hot_fraction=0.25, hot_share=0.9)
        draws = [workload.next_logical_page(8, rng) for _ in range(2000)]
        hot = sum(1 for d in draws if d < 2)
        assert 0.8 < hot / len(draws) < 0.97


class TestWorkloadLevelingInterplay:
    """The reason §3.1 assumes leveling: skewed traffic without leveling
    kills hot pages early, and Start-Gap largely repairs that."""

    def _half_life(self, wear_leveling, seed=4):
        device = PCMDevice(
            8, 64, 1, NoProtectionScheme,
            lifetime_model=FixedLifetime(50),
            wear_leveling=wear_leveling,
            workload=HotColdWorkload(hot_fraction=0.25, hot_share=0.9),
            rng=np.random.default_rng(seed),
        )
        device.run_until_dead(max_writes=100_000)
        return device.half_lifetime()

    def test_startgap_repairs_skew(self):
        unlevelled = self._half_life(NoWearLeveling())
        startgap = self._half_life(StartGapWearLeveling(8, gap_interval=4))
        assert startgap > 1.5 * unlevelled
