"""Tests for the workload generators and their interplay with wear leveling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pcm.device import PCMDevice
from repro.pcm.lifetime import FixedLifetime
from repro.pcm.wear import NoWearLeveling, StartGapWearLeveling
from repro.pcm.workload import HotColdWorkload, UniformWorkload, ZipfWorkload
from repro.schemes.ideal import NoProtectionScheme


class TestUniform:
    def test_covers_all_pages(self, rng):
        workload = UniformWorkload()
        draws = [workload.next_logical_page(8, rng) for _ in range(800)]
        counts = np.bincount(draws, minlength=8)
        assert counts.min() > 0
        assert counts.max() < 2 * counts.mean()


class TestZipf:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfWorkload(alpha=0)

    def test_skew_increases_with_alpha(self, rng):
        def top_share(alpha):
            workload = ZipfWorkload(alpha=alpha)
            draws = [workload.next_logical_page(32, rng) for _ in range(4000)]
            counts = np.sort(np.bincount(draws, minlength=32))[::-1]
            return counts[:3].sum() / counts.sum()

        assert top_share(2.0) > top_share(0.5)

    def test_in_range(self, rng):
        workload = ZipfWorkload(alpha=1.2)
        assert all(
            0 <= workload.next_logical_page(16, rng) < 16 for _ in range(200)
        )

    def test_repreps_on_population_change(self, rng):
        workload = ZipfWorkload(alpha=1.0)
        workload.next_logical_page(8, rng)
        assert 0 <= workload.next_logical_page(32, rng) < 32


class TestHotCold:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HotColdWorkload(hot_fraction=0)
        with pytest.raises(ConfigurationError):
            HotColdWorkload(hot_share=1.0)

    def test_hot_pages_dominate(self, rng):
        workload = HotColdWorkload(hot_fraction=0.25, hot_share=0.9)
        draws = [workload.next_logical_page(8, rng) for _ in range(2000)]
        hot = sum(1 for d in draws if d < 2)
        assert 0.8 < hot / len(draws) < 0.97


class TestWorkloadLevelingInterplay:
    """The reason §3.1 assumes leveling: skewed traffic without leveling
    kills hot pages early, and Start-Gap largely repairs that."""

    def _half_life(self, wear_leveling, seed=4):
        device = PCMDevice(
            8, 64, 1, NoProtectionScheme,
            lifetime_model=FixedLifetime(50),
            wear_leveling=wear_leveling,
            workload=HotColdWorkload(hot_fraction=0.25, hot_share=0.9),
            rng=np.random.default_rng(seed),
        )
        device.run_until_dead(max_writes=100_000)
        return device.half_lifetime()

    def test_startgap_repairs_skew(self):
        unlevelled = self._half_life(NoWearLeveling())
        startgap = self._half_life(StartGapWearLeveling(8, gap_interval=4))
        assert startgap > 1.5 * unlevelled
