"""Tests for the RDIS baseline: the mask construction and the controller."""

import itertools

import numpy as np
import pytest

from repro.core.formations import rdis_dimensions
from repro.errors import ConfigurationError, UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import roundtrip
from repro.schemes.rdis import RdisScheme, rdis_mask
from tests.conftest import random_data


class TestMaskConstruction:
    def test_no_faults_empty_mask(self):
        mask = rdis_mask({}, np.zeros(64, dtype=np.uint8), 8, 8, 2)
        assert mask.sum() == 0

    def test_single_wrong_fault(self):
        # fault at (row 1, col 2) of an 8x8 grid, stuck at 1, data zero
        data = np.zeros(64, dtype=np.uint8)
        mask = rdis_mask({10: 1}, data, 8, 8, 2)
        assert mask[10] == 1  # the fault cell is inverted
        # SI1 is the single intersection cell of one marked row and column
        assert mask.sum() == 1

    def test_right_fault_untouched(self):
        data = np.ones(64, dtype=np.uint8)
        mask = rdis_mask({10: 1}, data, 8, 8, 2)
        assert mask.sum() == 0

    def test_mask_consistency_invariant(self, rng):
        """Whenever a mask is returned, every fault stores correctly."""
        for _ in range(50):
            n_faults = int(rng.integers(1, 8))
            offsets = rng.choice(64, size=n_faults, replace=False)
            faults = {int(o): int(rng.integers(0, 2)) for o in offsets}
            data = random_data(rng, 64)
            mask = rdis_mask(faults, data, 8, 8, 2)
            if mask is None:
                continue
            for offset, stuck in faults.items():
                assert stuck == data[offset] ^ mask[offset]

    def test_any_three_faults_recoverable_with_two_toggles(self):
        """The RDIS-3 guarantee: exhaustively verify on a 4x4 grid that any
        3 fault positions, stuck values, and data bits resolve within two
        mask toggles."""
        grid = 16
        for positions in itertools.combinations(range(grid), 3):
            for stuck_bits in itertools.product((0, 1), repeat=3):
                for data_bits in itertools.product((0, 1), repeat=3):
                    data = np.zeros(grid, dtype=np.uint8)
                    for p, d in zip(positions, data_bits):
                        data[p] = d
                    faults = dict(zip(positions, stuck_bits))
                    assert rdis_mask(faults, data, 4, 4, 2) is not None

    def test_checkerboard_corners_unrecoverable(self):
        """2 W + 2 R at rectangle corners defeat any recursion depth."""
        # corners of a 2x2 sub-grid in an 8x8 arrangement: offsets 0, 1, 8, 9
        data = np.zeros(64, dtype=np.uint8)
        faults = {0: 1, 9: 1, 1: 0, 8: 0}  # W diagonal, R anti-diagonal
        for levels in (1, 2, 3, 5):
            assert rdis_mask(faults, data, 8, 8, levels) is None


class TestRdisScheme:
    def test_identity(self):
        scheme = RdisScheme(CellArray(512))
        assert scheme.name == "RDIS-3"
        assert scheme.overhead_bits == 97
        assert scheme.hard_ftc == 3
        assert (scheme.rows, scheme.cols) == rdis_dimensions(512)

    def test_depth_validation(self):
        with pytest.raises(ConfigurationError):
            RdisScheme(CellArray(512), depth=1)

    def test_three_faults_roundtrip(self, rng):
        for _ in range(5):
            cells = CellArray(512)
            for offset in rng.choice(512, size=3, replace=False):
                cells.inject_fault(int(offset), stuck_value=int(rng.integers(0, 2)))
            scheme = RdisScheme(cells)
            for _ in range(5):
                assert roundtrip(scheme, random_data(rng, 512))

    def test_checkerboard_fails(self):
        cells = CellArray(512)
        rows, cols = rdis_dimensions(512)
        for offset, stuck in [(0, 1), (cols + 1, 1), (1, 0), (cols, 0)]:
            cells.inject_fault(offset, stuck_value=stuck)
        scheme = RdisScheme(cells)
        with pytest.raises(UncorrectableError):
            scheme.write(np.zeros(512, dtype=np.uint8))

    def test_many_random_faults_mostly_recoverable(self, rng):
        cells = CellArray(512)
        for offset in rng.choice(512, size=6, replace=False):
            cells.inject_fault(int(offset), stuck_value=int(rng.integers(0, 2)))
        scheme = RdisScheme(cells)
        successes = sum(roundtrip(scheme, random_data(rng, 512)) for _ in range(10))
        assert successes >= 8  # 6 scattered faults rarely hit the bad pattern
