"""Tests for the unified observability layer (:mod:`repro.obs`).

Covers the three contracts the layer makes:

* the tracer's span trees, sampling and merge are deterministic — the
  exported JSONL is bit-identical for every worker count;
* the labeled metrics registry merges commutatively and its snapshot /
  Prometheus exposition are deterministic;
* the profiler is wall-clock and therefore lives strictly outside every
  deterministic snapshot.
"""

import itertools
import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Histogram,
    MetricsRegistry,
    NullProfiler,
    NullTracer,
    Profiler,
    Tracer,
    parse_prometheus_text,
    read_trace_jsonl,
    render_obs_report,
    render_series,
)
from repro.pcm.lifetime import NormalLifetime
from repro.service import run_load
from repro.sim.roster import aegis_spec


def _small_load(workers: int, **overrides):
    params = dict(
        ops=600,
        seed=11,
        shards=2,
        workers=workers,
        n_addresses=16,
        spares=4,
        workload="zipf",
        lifetime_model=NormalLifetime(mean_lifetime=50.0),
        trace_sample=5,
    )
    params.update(overrides)
    return run_load(aegis_spec(9, 61, 512), **params)


# ---------------------------------------------------------------------------
# histogram quantile edge cases (the F-quantile overflow fix)


class TestHistogramQuantile:
    def test_overflow_bucket_returns_inf(self):
        hist = Histogram(edges=(10, 20, 40))
        for value in (5, 15, 1000, 2000, 3000):
            hist.observe(value)
        # the median observation is beyond the last edge: reporting 40
        # would silently under-estimate the tail
        assert hist.quantile(0.9) == math.inf
        assert hist.quantile(1.0) == math.inf
        assert hist.quantile_label(0.9) == ">40"

    def test_quantile_zero_returns_lowest_populated_bucket(self):
        hist = Histogram(edges=(10, 20, 40))
        hist.observe(15)
        hist.observe(35)
        assert hist.quantile(0.0) == 20.0
        assert hist.quantile_label(0.0) == "20"

    def test_quantile_empty_histogram(self):
        hist = Histogram(edges=(10, 20))
        assert hist.quantile(0.5) == 0.0

    def test_quantile_validates_range(self):
        hist = Histogram(edges=(10,))
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)

    def test_overflow_property_counts_tail(self):
        hist = Histogram(edges=(10,))
        hist.observe(5)
        hist.observe(50)
        hist.observe(500)
        assert hist.overflow == 2

    def test_merge_rejects_mismatched_edges(self):
        left = Histogram(edges=(1, 2, 4))
        right = Histogram(edges=(1, 2, 8))
        with pytest.raises(ConfigurationError):
            left.merge(right)


# ---------------------------------------------------------------------------
# labeled metrics registry


class TestMetricsRegistry:
    def _sample_registries(self):
        shards = []
        for shard in range(3):
            reg = MetricsRegistry()
            reg.inc("writes_total", 10 + shard, scheme="aegis", outcome="ok")
            reg.inc("writes_total", shard, scheme="aegis", outcome="remapped")
            reg.inc("plain_counter", 2 * shard + 1)
            reg.set_gauge("spares_free", 8 - shard, shard=shard)
            for value in range(shard + 2):
                reg.observe("stage_cost", 10.0 * value + shard, edges=(8, 64, 512))
            shards.append(reg)
        return shards

    def test_merge_commutative_over_shard_permutations(self):
        snapshots = []
        for order in itertools.permutations(range(3)):
            shards = self._sample_registries()
            merged = MetricsRegistry()
            for index in order:
                merged.merge(shards[index])
            snapshots.append(json.dumps(merged.snapshot(), sort_keys=True))
        assert len(set(snapshots)) == 1

    def test_counter_value_and_total(self):
        reg = MetricsRegistry()
        reg.inc("writes_total", 3, scheme="a", outcome="ok")
        reg.inc("writes_total", 2, scheme="a", outcome="remapped")
        reg.inc("writes_total", 7, scheme="b", outcome="ok")
        assert reg.counter_value("writes_total", scheme="a", outcome="ok") == 3
        assert reg.counter_total("writes_total") == 12
        assert reg.counter_total("writes_total", outcome="ok") == 10
        assert reg.counter_total("writes_total", scheme="a") == 5

    def test_flat_counters_exclude_labeled_series(self):
        reg = MetricsRegistry()
        reg.inc("plain", 4)
        reg.inc("labeled", 9, kind="x")
        assert reg.flat_counters() == {"plain": 4}

    def test_prometheus_round_trip(self):
        reg = self._sample_registries()[1]
        text = reg.to_prometheus_text()
        parsed = parse_prometheus_text(text)
        assert parsed['writes_total{outcome="ok",scheme="aegis"}'] == 11
        assert parsed["plain_counter"] == 3
        assert parsed['stage_cost_count'] == 3
        # histogram exposition carries cumulative buckets and +Inf
        assert 'stage_cost_bucket{le="+Inf"}' in parsed

    def test_render_series_escapes_label_values(self):
        series = render_series("m", (("label", 'va"l\\ue'), ))
        assert series == 'm{label="va\\"l\\\\ue"}'

    def test_merged_histograms_require_same_edges(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.observe("h", 1.0, edges=(1, 2))
        right.observe("h", 1.0, edges=(1, 4))
        with pytest.raises(ConfigurationError):
            left.merge(right)


# ---------------------------------------------------------------------------
# tracer


class TestTracer:
    def test_span_tree_nesting_and_clock(self):
        tracer = Tracer()
        with tracer.span("outer", op=1) as outer:
            with tracer.span("inner") as inner:
                inner.cost(cell_writes=5)
            outer.cost(cell_writes=5, passes=1)
        (root,) = tracer.roots
        assert root.name == "outer"
        assert root.attrs["op"] == 1
        (child,) = root.children
        assert child.name == "inner"
        # tick clock: open(0) < child open(1) < child close(2) < close(3)
        assert root.start < child.start < child.end < root.end

    def test_every_nth_sampling(self):
        tracer = Tracer(sample_every=3)
        for index in range(9):
            with tracer.span("op", index=index):
                pass
        assert len(tracer.roots) == 3
        assert tracer.sampled_out == 6
        snapshot = tracer.snapshot()
        assert snapshot["roots_kept"] == 3
        assert snapshot["roots_sampled_out"] == 6
        # tallies aggregate over the kept roots (the contract surface)
        assert snapshot["spans"]["op"]["count"] == 3
        assert {root.attrs["index"] for root in tracer.roots} == {0, 3, 6}

    def test_error_roots_always_kept(self):
        tracer = Tracer(sample_every=1000)
        for index in range(20):
            with tracer.span("op", index=index) as span:
                if index in (7, 13):
                    span.fail()
        kept = {root.attrs["index"] for root in tracer.roots}
        # index 0 by sampling, 7 and 13 by the error bias
        assert kept == {0, 7, 13}

    def test_exception_marks_span_failed_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        (root,) = tracer.roots
        assert root.error and root.children[0].error
        assert tracer.snapshot()["spans"]["inner"]["errors"] == 1

    def test_merge_tags_shard_and_sums_tallies(self):
        shards = []
        for shard in range(2):
            tracer = Tracer()
            with tracer.span("op", shard_local=shard):
                pass
            shards.append(tracer)
        merged = Tracer()
        for shard, tracer in enumerate(shards):
            merged.merge(tracer, shard=shard)
        assert [root.attrs["shard"] for root in merged.roots] == [0, 1]
        assert merged.snapshot()["spans"]["op"]["count"] == 2

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", op=3) as span:
            span.cost(cell_writes=17)
        path = tmp_path / "trace.jsonl"
        lines = tracer.write_jsonl(str(path))
        assert lines == 2  # one root + the snapshot line
        roots, snapshot = read_trace_jsonl(str(path))
        assert roots[0]["name"] == "outer"
        assert roots[0]["costs"]["cell_writes"] == 17
        assert snapshot == {"event": "trace_snapshot", **tracer.snapshot()}

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        with tracer.span("anything") as span:
            span.set(x=1)
            span.cost(y=2)
            span.fail()
        assert not tracer.enabled

    def test_sample_every_validated(self):
        with pytest.raises(ConfigurationError):
            Tracer(sample_every=0)


# ---------------------------------------------------------------------------
# profiler


class TestProfiler:
    def test_phases_accumulate_and_report(self):
        profiler = Profiler()
        with profiler.phase("build"):
            pass
        with profiler.phase("build"):
            pass
        profiler.add("drive", 1.5, calls=3)
        report = profiler.report()
        assert report["build"]["calls"] == 2
        assert report["drive"]["seconds"] == 1.5
        assert report["drive"]["calls"] == 3
        # sorted by descending cost
        assert list(report) == ["drive", "build"]

    def test_merge(self):
        left, right = Profiler(), Profiler()
        left.add("x", 1.0, calls=2)
        right.add("x", 2.0, calls=1)
        left.merge(right)
        assert left.report()["x"]["seconds"] == 3.0
        assert left.report()["x"]["calls"] == 3

    def test_null_profiler_is_inert(self):
        profiler = NullProfiler()
        with profiler.phase("anything"):
            pass
        assert profiler.report() == {}
        assert not profiler.enabled


# ---------------------------------------------------------------------------
# service integration: determinism, event cap, compat shim


class TestServiceObservability:
    def test_trace_and_metrics_worker_count_invariant(self, tmp_path):
        artifacts = {}
        for workers in (1, 4):
            report = _small_load(workers)
            trace = tmp_path / f"trace_w{workers}.jsonl"
            metrics = tmp_path / f"metrics_w{workers}.prom"
            report.write_trace_jsonl(str(trace))
            report.write_metrics(str(metrics))
            artifacts[workers] = (trace.read_bytes(), metrics.read_bytes())
        assert artifacts[1] == artifacts[4]

    def test_trace_disabled_by_default(self):
        report = _small_load(1, trace_sample=0)
        assert isinstance(report.telemetry.tracer, NullTracer)
        with pytest.raises(ConfigurationError):
            report.write_trace_jsonl("/tmp/unused.jsonl")

    def test_pipeline_stages_traced(self):
        report = _small_load(1)
        names = set(report.telemetry.tracer.snapshot()["spans"])
        assert {"differential_write", "fail_cache_consult"} <= names
        assert {"buffer_enqueue", "buffer_drain"} <= names

    def test_labeled_write_outcomes_reconcile_with_flat_counters(self):
        # endurance low enough that remaps actually happen in-run
        report = _small_load(
            1, ops=1200, lifetime_model=NormalLifetime(mean_lifetime=20.0)
        )
        metrics = report.telemetry.metrics
        counters = report.snapshot["counters"]
        lost = metrics.counter_total("writes_total", outcome="lost")
        assert (
            metrics.counter_total("writes_total") - lost
            == counters["writes_serviced"]
        )
        remaps = counters.get("remaps", 0)
        assert remaps > 0
        assert metrics.counter_total("writes_total", outcome="remapped") == remaps

    def test_event_cap_bounds_memory_and_counts_drops(self):
        report = _small_load(1, event_cap=4, snapshot_interval=50)
        telemetry = report.telemetry
        assert len(telemetry.events) <= 4
        assert telemetry.events_dropped > 0
        assert report.snapshot["events_dropped"] == telemetry.events_dropped

    def test_profile_report_outside_snapshot(self):
        report = _small_load(1, profile=True)
        assert "shard.drive" in report.profile
        assert report.profile["shard.drive"]["seconds"] > 0
        # the wall-clock channel must never leak into the deterministic body
        dump = json.dumps(report.snapshot)
        assert "time" not in dump and "elapsed" not in dump

    def test_counters_property_still_flat(self):
        report = _small_load(1)
        counters = report.telemetry.counters
        assert isinstance(counters, dict)
        assert all("{" not in name for name in counters)


# ---------------------------------------------------------------------------
# obs-report rendering


class TestObsReport:
    def test_report_renders_stage_breakdown(self, tmp_path):
        report = _small_load(1)
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.prom"
        report.write_trace_jsonl(str(trace))
        report.write_metrics(str(metrics))
        text = render_obs_report(str(trace), metrics_path=str(metrics), top=5)
        assert "## Stage-cost breakdown per scheme" in text
        assert "differential_write" in text
        assert "Aegis 9x61" in text
        assert "## Slowest spans" in text
        assert "## Metrics" in text

    def test_report_without_metrics(self, tmp_path):
        report = _small_load(1)
        trace = tmp_path / "trace.jsonl"
        report.write_trace_jsonl(str(trace))
        text = render_obs_report(str(trace))
        assert "## Span inventory" in text


# ---------------------------------------------------------------------------
# CLI acceptance: serve-bench artifacts and obs-report


class TestCliAcceptance:
    def _serve(self, tmp_path, workers):
        from repro.cli import main

        trace = tmp_path / f"t{workers}.jsonl"
        metrics = tmp_path / f"m{workers}.prom"
        code = main(
            [
                "serve-bench",
                "--scheme",
                "aegis-9x61",
                "--ops",
                "400",
                "--shards",
                "2",
                "--workers",
                str(workers),
                "--seed",
                "3",
                "--trace",
                str(trace),
                "--trace-sample",
                "5",
                "--metrics",
                str(metrics),
            ]
        )
        assert code == 0
        return trace.read_bytes(), metrics.read_bytes()

    def test_serve_bench_artifacts_bit_identical_across_workers(self, tmp_path):
        assert self._serve(tmp_path, 1) == self._serve(tmp_path, 4)

    def test_obs_report_cli(self, tmp_path, capsys):
        from repro.cli import main

        self._serve(tmp_path, 1)
        out = tmp_path / "report.md"
        code = main(
            [
                "obs-report",
                "--trace",
                str(tmp_path / "t1.jsonl"),
                "--metrics",
                str(tmp_path / "m1.prom"),
                "-o",
                str(out),
            ]
        )
        assert code == 0
        text = out.read_text()
        assert "## Stage-cost breakdown per scheme" in text
        capsys.readouterr()


# ---------------------------------------------------------------------------
# exposition label round-trip (the _escape/_unescape inverse pair)


class TestSeriesRoundTrip:
    def test_parse_series_inverts_render_series(self):
        from repro.obs import parse_series

        labels = {"path": 'a\\b', "note": 'say "hi"\nbye', "plain": "ok"}
        rendered = render_series("writes_total", labels)
        assert parse_series(rendered) == ("writes_total", labels)

    def test_parse_series_bare_name(self):
        from repro.obs import parse_series

        assert parse_series("writes_total") == ("writes_total", {})

    def test_parse_series_rejects_garbage(self):
        from repro.obs import parse_series

        for text in ("", "bad name{}", 'x{unquoted=1}', 'x{k="v" trailing}'):
            with pytest.raises(ConfigurationError):
                parse_series(text)

    def test_prometheus_file_round_trip_with_escapes(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("writes_total", 7, path="C:\\tmp", msg='line1\nline2"q"')
        path = tmp_path / "m.prom"
        registry.write_prometheus(str(path))
        series = parse_prometheus_text(path.read_text())
        key = render_series(
            "writes_total", {"path": "C:\\tmp", "msg": 'line1\nline2"q"'}
        )
        assert series[key] == 7

    def test_escape_unescape_property(self):
        from hypothesis import given
        from hypothesis import strategies as st

        from repro.obs import parse_series

        label_values = st.text(
            alphabet=st.characters(
                codec="ascii", exclude_characters="\r", min_codepoint=9
            ),
            max_size=20,
        )

        @given(value=label_values, other=label_values)
        def check(value, other):
            labels = {"a": value, "b": other}
            assert parse_series(render_series("s_total", labels)) == (
                "s_total",
                labels,
            )

        check()


# ---------------------------------------------------------------------------
# all-overflow histograms (every observation beyond the last edge)


class TestHistogramAllOverflow:
    def _all_overflow(self):
        hist = Histogram(edges=(10, 20))
        for value in (30, 50, 1000):
            hist.observe(value)
        return hist

    def test_quantile_zero_clamps_into_overflow(self):
        # rank clamping floors q=0 to the first populated bucket; when
        # that bucket IS the overflow, the honest answer is inf, not 20
        hist = self._all_overflow()
        assert hist.quantile(0.0) == math.inf
        assert hist.quantile(0.5) == math.inf
        assert hist.quantile(1.0) == math.inf

    def test_quantile_label_reports_open_tail(self):
        hist = self._all_overflow()
        assert hist.quantile_label(0.0) == ">20"
        assert hist.quantile_label(0.99) == ">20"

    def test_merge_of_two_all_overflow_histograms(self):
        left = self._all_overflow()
        right = self._all_overflow()
        left.merge(right)
        assert left.total == 6
        assert left.overflow == 6
        assert left.quantile(0.5) == math.inf
        assert left.quantile_label(0.5) == ">20"


# ---------------------------------------------------------------------------
# tenant SLO section with partial series (the n/a regression)


class TestTenantSectionPartialRows:
    def _render(self, series):
        from repro.obs.report import _tenant_slo_section

        return _tenant_slo_section(series)

    def test_partial_tenant_renders_na_cells(self):
        # writes exported, but reads/backpressure/stage-cost series absent
        # (a truncated scrape): the row must say n/a, not a misleading 0
        series = {
            render_series(
                "tenant_writes_total", {"qos": "bulk", "tenant": "t0"}
            ): 12.0,
        }
        section = self._render(series)
        assert section is not None
        row = next(line for line in section.splitlines() if "t0" in line)
        assert "n/a" in row
        assert "12" in row

    def test_reads_only_tenant_has_na_qos_and_writes(self):
        series = {
            render_series("tenant_reads_total", {"tenant": "t1"}): 5.0,
        }
        section = self._render(series)
        row = next(line for line in section.splitlines() if "t1" in line)
        # qos, writes, backpressure and both quantiles are all unknown
        assert row.count("n/a") == 5

    def test_full_rows_unchanged(self):
        series = {
            render_series(
                "tenant_writes_total", {"qos": "bulk", "tenant": "t2"}
            ): 10.0,
            render_series("tenant_reads_total", {"tenant": "t2"}): 4.0,
            render_series("tenant_backpressure_total", {"tenant": "t2"}): 1.0,
        }
        section = self._render(series)
        row = next(line for line in section.splitlines() if "t2" in line)
        assert "bulk" in row and "10" in row and "4" in row
        # only the stage-cost quantiles (no bucket series) are n/a
        assert row.count("n/a") == 2

    def test_no_tenant_series_returns_none(self):
        assert self._render({"writes_total": 5.0}) is None
