"""Tests for the Figure 3/4 hardware models — ROMs must agree with the math."""

import numpy as np
import pytest

from repro.core.formations import formation
from repro.core.geometry import rectangle_for
from repro.core.partition import partition_for
from repro.hardware.cost import chip_cost, fail_cache_bits
from repro.hardware.rom import CollisionSlopeRom, GroupIdRom, InversionMaskRom


@pytest.fixture
def figure_rect():
    """The paper's Figure 3/4 example: a 32-bit block in a 5x7 rectangle."""
    return rectangle_for(32, 7)


class TestGroupIdRom:
    def test_paper_rom_dimensions(self, figure_rect):
        rom = GroupIdRom(figure_rect)
        # the paper: a 49 x 32-bit ROM and a 49 x 7-bit ROM
        assert rom.membership.shape == (49, 32)
        assert rom.membership_bits == 49 * 32
        assert rom.id_bits == 49 * 7

    def test_lookup_matches_partition(self, figure_rect):
        rom = GroupIdRom(figure_rect)
        partition = partition_for(figure_rect)
        for slope in range(7):
            for address in range(32):
                assert rom.lookup(address, slope) == partition.group_of(
                    address, slope
                )

    def test_lookup_validation(self, figure_rect):
        rom = GroupIdRom(figure_rect)
        with pytest.raises(ValueError):
            rom.lookup(32, 0)
        with pytest.raises(ValueError):
            rom.lookup(0, 7)

    def test_membership_rows_partition_the_block(self, figure_rect):
        rom = GroupIdRom(figure_rect)
        for slope in range(7):
            rows = rom.membership[slope * 7 : (slope + 1) * 7]
            assert np.all(rows.sum(axis=0) == 1)  # Theorem 1 in silicon


class TestInversionMaskRom:
    def test_matches_partition_masks(self, figure_rect, rng):
        rom = InversionMaskRom(figure_rect)
        partition = partition_for(figure_rect)
        for _ in range(20):
            slope = int(rng.integers(0, 7))
            vector = rng.integers(0, 2, size=7, dtype=np.uint8)
            expected = partition.members_mask(slope, np.flatnonzero(vector))
            actual = rom.mask_for(slope, vector)
            assert np.array_equal(actual, expected)

    def test_empty_vector_empty_mask(self, figure_rect):
        rom = InversionMaskRom(figure_rect)
        assert rom.mask_for(3, np.zeros(7, dtype=np.uint8)).sum() == 0

    def test_and_gate_count(self, figure_rect):
        assert InversionMaskRom(figure_rect).and_gate_count == 49

    def test_vector_shape_validated(self, figure_rect):
        rom = InversionMaskRom(figure_rect)
        with pytest.raises(ValueError):
            rom.mask_for(0, np.zeros(6, dtype=np.uint8))


class TestCollisionSlopeRom:
    def test_matches_collision_math(self, figure_rect):
        rom = CollisionSlopeRom(figure_rect)
        for o1 in range(32):
            for o2 in range(32):
                if o1 == o2:
                    continue
                expected = figure_rect.collision_slope(o1, o2)
                assert rom.lookup(o1, o2) == (-1 if expected is None else expected)

    def test_storage_for_512(self):
        rom = CollisionSlopeRom(rectangle_for(512, 61))
        assert rom.storage_bits == 512 * 512 * 6


class TestAreaModel:
    def test_shared_structures_amortise(self):
        from repro.hardware.area import area_budget

        budget = area_budget(formation(9, 61, 512))
        few = budget.amortised_per_block_um2(16)
        many = budget.amortised_per_block_um2(131072)  # an 8 MB chip
        assert many < few
        # with enough blocks the shared ROMs nearly vanish per block
        assert many == pytest.approx(budget.per_block_metadata_um2, rel=0.25)

    def test_rw_variant_costs_more_silicon(self):
        from repro.hardware.area import area_budget

        base = area_budget(formation(9, 61, 512), variant="aegis")
        rw = area_budget(formation(9, 61, 512), variant="aegis-rw")
        assert rw.shared_rom_um2 > base.shared_rom_um2

    def test_cache_inclusion(self):
        from repro.hardware.area import area_budget

        budget = area_budget(formation(9, 61, 512))
        assert budget.total_um2(64, with_cache=True) > budget.total_um2(64)

    def test_variant_validation(self):
        from repro.errors import ConfigurationError
        from repro.hardware.area import area_budget

        with pytest.raises(ConfigurationError):
            area_budget(formation(9, 61, 512), variant="bogus")

    def test_lookup_energy(self):
        from repro.hardware.area import lookup_energy_pj

        form = formation(9, 61, 512)
        plain = lookup_energy_pj(form)
        cached = lookup_energy_pj(form, cache_assisted=True)
        assert 0 < plain < cached

    def test_technology_validation(self):
        from repro.errors import ConfigurationError
        from repro.hardware.area import TechnologyModel

        with pytest.raises(ConfigurationError):
            TechnologyModel(gate_um2=0)


class TestChipCost:
    def test_figure_example(self):
        cost = chip_cost(formation(5, 7, 32))
        assert cost.group_rom_bits == 49 * 32
        assert cost.id_rom_bits == 49 * 7
        assert cost.and_gates == 49
        assert cost.rw_total_bits > cost.base_total_bits

    def test_fail_cache_sizing(self):
        # 4096 entries of (32-bit address + 9-bit offset + value + valid)
        assert fail_cache_bits(4096, 512) == 4096 * 43
