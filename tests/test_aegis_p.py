"""Tests for Aegis-p (pointer-recorded inversion, §2.3's cost remark)."""

import numpy as np
import pytest

from repro.core.aegis import AegisScheme
from repro.core.aegis_p import AegisPointerScheme
from repro.core.formations import formation
from repro.errors import ConfigurationError, UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import roundtrip
from tests.conftest import random_data

FORM = formation(23, 23, 512)


def make_scheme(pointers=4, faults=()):
    cells = CellArray(512)
    for offset, stuck in faults:
        cells.inject_fault(offset, stuck_value=stuck)
    return AegisPointerScheme(cells, FORM, pointers), cells


class TestBasics:
    def test_cost_below_plain_aegis_for_small_budgets(self):
        scheme, _ = make_scheme(pointers=2)
        # 5-bit counter + 2 x 5-bit pointers + flag = 16 < plain Aegis's 28
        assert scheme.overhead_bits == 16
        plain = AegisScheme(CellArray(512), FORM)
        assert scheme.overhead_bits < plain.overhead_bits

    def test_hard_ftc_capped_by_budget(self):
        assert make_scheme(pointers=2)[0].hard_ftc == 2
        assert make_scheme(pointers=22)[0].hard_ftc == 7  # slope supply caps

    def test_budget_validation(self):
        with pytest.raises(ConfigurationError):
            make_scheme(pointers=0)
        with pytest.raises(ConfigurationError):
            make_scheme(pointers=23)

    def test_faultless_roundtrip(self, rng):
        scheme, _ = make_scheme()
        for _ in range(5):
            assert roundtrip(scheme, random_data(rng, 512))


class TestRecovery:
    def test_within_budget_roundtrips(self, rng):
        for _ in range(5):
            offsets = rng.choice(512, size=4, replace=False)
            faults = [(int(o), int(rng.integers(0, 2))) for o in offsets]
            scheme, _ = make_scheme(pointers=4, faults=faults)
            for _ in range(5):
                assert roundtrip(scheme, random_data(rng, 512))

    def test_pointer_overflow_fails(self):
        # five stuck-at-1 faults in five different columns: all-zero data
        # makes all five W simultaneously, needing 5 > 2 pointers
        faults = [(o, 1) for o in (0, 1, 2, 3, 4)]
        scheme, _ = make_scheme(pointers=2, faults=faults)
        with pytest.raises(UncorrectableError):
            scheme.write(np.zeros(512, dtype=np.uint8))
        assert scheme.retired

    def test_pointer_set_stays_within_budget(self, rng):
        scheme, cells = make_scheme(pointers=3)
        for offset in rng.choice(512, size=3, replace=False):
            cells.inject_fault(int(offset), stuck_value=int(rng.integers(0, 2)))
            payload = random_data(rng, 512)
            scheme.write(payload)
            assert np.array_equal(scheme.read(), payload)
            assert len(scheme.inverted_groups) <= 3

    def test_never_outlives_plain_aegis(self):
        """Same faults, same data stream: the pointer variant must fail no
        later... and no earlier than its budget explains."""
        for trial in range(5):
            stream = np.random.default_rng(700 + trial)
            offsets = [int(o) for o in stream.permutation(512)[:30]]
            deaths = {}
            for name, factory in (
                ("plain", lambda c: AegisScheme(c, FORM)),
                ("pointer", lambda c: AegisPointerScheme(c, FORM, 3)),
            ):
                cells = CellArray(512)
                scheme = factory(cells)
                stream2 = np.random.default_rng(trial)
                deaths[name] = len(offsets) + 1
                for i, offset in enumerate(offsets):
                    cells.inject_fault(offset, stuck_value=int(stream2.integers(0, 2)))
                    try:
                        scheme.write(stream2.integers(0, 2, 512, dtype=np.uint8))
                    except UncorrectableError:
                        deaths[name] = i
                        break
            assert deaths["pointer"] <= deaths["plain"]
