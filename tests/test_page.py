"""Tests for the 4 KB page model."""

import numpy as np
import pytest

from repro.core.aegis import AegisScheme
from repro.core.formations import formation
from repro.errors import BlockRetiredError
from repro.pcm.lifetime import FixedLifetime
from repro.pcm.page import PAGE_BITS_4KB, Page
from repro.schemes.ideal import NoProtectionScheme


def aegis_factory(cells):
    return AegisScheme(cells, formation(9, 61, 512))


class TestConstruction:
    def test_page_4kb_block_counts(self, rng):
        page = Page.page_4kb(512, NoProtectionScheme, rng=rng)
        assert len(page.blocks) == 64
        assert page.n_bits == PAGE_BITS_4KB == 32768

    def test_page_4kb_256bit_blocks(self, rng):
        page = Page.page_4kb(256, NoProtectionScheme, rng=rng)
        assert len(page.blocks) == 128

    def test_indivisible_block_size_rejected(self, rng):
        with pytest.raises(ValueError):
            Page.page_4kb(300, NoProtectionScheme, rng=rng)


class TestWriteLifecycle:
    def test_roundtrip(self, rng):
        page = Page(512, 4, aegis_factory, rng=rng)
        data = rng.integers(0, 2, 4 * 512, dtype=np.uint8)
        page.write(data)
        assert np.array_equal(page.read(), data)
        assert page.writes_serviced == 1

    def test_first_block_failure_fails_page(self, rng):
        page = Page(
            512, 4, NoProtectionScheme, lifetime_model=FixedLifetime(3), rng=rng
        )
        writes, recovered = page.run_until_failure(max_writes=1000)
        assert page.failed
        assert recovered >= 0
        with pytest.raises(BlockRetiredError):
            page.write_random()

    def test_shape_validation(self, rng):
        page = Page(512, 2, aegis_factory, rng=rng)
        with pytest.raises(ValueError):
            page.write(np.zeros(100, dtype=np.uint8))

    def test_fault_count_sums_blocks(self, rng):
        page = Page(512, 2, aegis_factory, rng=rng)
        page.blocks[0].cells.inject_fault(0, stuck_value=1)
        page.blocks[1].cells.inject_fault(5, stuck_value=0)
        assert page.fault_count == 2
