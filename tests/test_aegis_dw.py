"""Tests for the double-write option (§2.4's rejected design)."""

import numpy as np
import pytest

from repro.analysis.writecost import write_cost_study
from repro.core.aegis_dw import AegisDoubleWriteScheme
from repro.core.aegis_rw import AegisRwScheme
from repro.core.formations import formation
from repro.errors import UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import roundtrip
from tests.conftest import random_data

FORM = formation(9, 61, 512)


def make_scheme(faults=()):
    cells = CellArray(512)
    for offset, stuck in faults:
        cells.inject_fault(offset, stuck_value=stuck)
    return AegisDoubleWriteScheme(cells, FORM), cells


class TestCorrectness:
    def test_faultless_roundtrip(self, rng):
        scheme, _ = make_scheme()
        for _ in range(5):
            assert roundtrip(scheme, random_data(rng, 512))

    def test_discovers_all_fault_types(self, rng):
        # same-group W pairs and R faults, no cache anywhere
        scheme, _ = make_scheme(faults=[(0, 1), (1, 1), (5, 0), (200, 1)])
        data = np.zeros(512, dtype=np.uint8)
        scheme.write(data)
        assert np.array_equal(scheme.read(), data)

    def test_rw_level_hard_ftc(self, rng):
        # tolerates the Aegis-rw guarantee (13 <= hard FTC of 9x61 rw = 15)
        for _ in range(5):
            offsets = rng.choice(512, size=13, replace=False)
            faults = [(int(o), int(rng.integers(0, 2))) for o in offsets]
            scheme, _ = make_scheme(faults=faults)
            for _ in range(3):
                assert roundtrip(scheme, random_data(rng, 512))

    def test_exhaustion_fails(self):
        # W column 0 vs R column 1 of a 23x23 grid poisons every slope
        n, a, b = 512, 23, 23
        faults = []
        for row in range(b):
            if a * row < n:
                faults.append((a * row, 1))
            if 1 + a * row < n:
                faults.append((1 + a * row, 0))
        cells = CellArray(n)
        for offset, stuck in faults:
            cells.inject_fault(offset, stuck_value=stuck)
        scheme = AegisDoubleWriteScheme(cells, formation(a, b, n))
        with pytest.raises(UncorrectableError):
            scheme.write(np.zeros(n, dtype=np.uint8))


class TestWhyThePaperRejectsIt:
    def test_wear_is_several_times_a_plain_write(self):
        dw = write_cost_study(
            "dw", lambda c: AegisDoubleWriteScheme(c, FORM),
            fault_count=4, writes=20, trials=4,
        )
        rw = write_cost_study(
            "rw", lambda c: AegisRwScheme(c, FORM),
            fault_count=4, writes=20, trials=4,
        )
        # the probe write flips every bit and the final write flips most
        # back: ~4-5x the cell writes of the cache-assisted variant
        assert dw.cell_writes > 3.5 * rw.cell_writes
        assert dw.verification_reads == 3.0
