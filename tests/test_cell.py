"""Tests for the raw PCM cell array."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pcm.cell import CellArray


class TestConstruction:
    def test_positive_size_required(self):
        with pytest.raises(ConfigurationError):
            CellArray(0)

    def test_initial_state(self):
        cells = CellArray(16)
        assert cells.read().tolist() == [0] * 16
        assert cells.fault_count == 0
        assert cells.total_writes == 0


class TestWrites:
    def test_differential_write_skips_equal_bits(self):
        cells = CellArray(8)
        data = np.array([1, 0, 1, 0, 1, 0, 1, 0], dtype=np.uint8)
        programmed = cells.write(data)
        assert programmed == 4  # only the four 0->1 transitions
        assert cells.write(data) == 0  # idempotent re-write costs nothing

    def test_non_differential_write_programs_everything(self):
        cells = CellArray(8, differential_writes=False)
        assert cells.write(np.zeros(8, dtype=np.uint8)) == 8

    def test_mask_restricts_write(self):
        cells = CellArray(4)
        mask = np.array([1, 0, 1, 0], dtype=np.uint8)
        cells.write(np.ones(4, dtype=np.uint8), mask=mask)
        assert cells.read().tolist() == [1, 0, 1, 0]

    def test_wear_counts_per_cell(self):
        cells = CellArray(4)
        cells.write(np.array([1, 1, 0, 0], dtype=np.uint8))
        cells.write(np.array([0, 1, 0, 0], dtype=np.uint8))
        assert cells.write_counts.tolist() == [2, 1, 0, 0]

    def test_shape_validation(self):
        cells = CellArray(4)
        with pytest.raises(ValueError):
            cells.write(np.zeros(5, dtype=np.uint8))
        with pytest.raises(ValueError):
            cells.write(np.zeros(4, dtype=np.uint8), mask=np.zeros(3, dtype=bool))


class TestFaults:
    def test_stuck_cell_ignores_writes(self):
        cells = CellArray(4)
        cells.inject_fault(1, stuck_value=1)
        cells.write(np.zeros(4, dtype=np.uint8))
        assert cells.read().tolist() == [0, 1, 0, 0]

    def test_stuck_at_current_value(self):
        cells = CellArray(4)
        cells.write(np.array([0, 1, 0, 0], dtype=np.uint8))
        cells.inject_fault(1)  # freeze at stored value
        assert cells.stuck_value_of(1) == 1

    def test_fault_bookkeeping(self):
        cells = CellArray(8)
        cells.inject_fault(3, stuck_value=0)
        cells.inject_fault(6, stuck_value=1)
        assert cells.fault_offsets == [3, 6]
        assert cells.fault_count == 2
        with pytest.raises(ValueError):
            cells.stuck_value_of(0)

    def test_invalid_fault_injection(self):
        cells = CellArray(4)
        with pytest.raises(ValueError):
            cells.inject_fault(4)
        with pytest.raises(ValueError):
            cells.inject_fault(0, stuck_value=2)

    def test_verify_reveals_stuck_at_wrong_only(self):
        cells = CellArray(8)
        cells.inject_fault(2, stuck_value=1)  # wrong for zeros
        cells.inject_fault(5, stuck_value=0)  # right for zeros
        data = np.zeros(8, dtype=np.uint8)
        cells.write(data)
        assert cells.verify(data).tolist() == [2]

    def test_stuck_cell_still_accrues_wear_attempts(self):
        # programming pulses hit the cell even though it no longer switches
        cells = CellArray(2)
        cells.inject_fault(0, stuck_value=0)
        cells.write(np.ones(2, dtype=np.uint8))
        assert cells.write_counts[0] == 1
