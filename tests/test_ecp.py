"""Tests for the ECP baseline."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import roundtrip
from repro.schemes.ecp import EcpScheme
from tests.conftest import random_data


def make_scheme(pointers=6, n_bits=512, faults=(), **kwargs):
    cells = CellArray(n_bits)
    for offset, stuck in faults:
        cells.inject_fault(offset, stuck_value=stuck)
    return EcpScheme(cells, pointers, **kwargs), cells


class TestBasics:
    def test_identity(self):
        scheme, _ = make_scheme()
        assert scheme.name == "ECP6"
        assert scheme.overhead_bits == 61  # 1 + 6*10 for 512-bit blocks
        assert scheme.hard_ftc == 6

    def test_needs_at_least_one_entry(self):
        with pytest.raises(ConfigurationError):
            make_scheme(pointers=0)

    def test_faultless(self, rng):
        scheme, _ = make_scheme()
        assert roundtrip(scheme, random_data(rng, 512))
        assert not scheme.full


class TestCorrection:
    def test_exactly_pointer_budget(self, rng):
        offsets = rng.choice(512, size=6, replace=False)
        faults = [(int(o), int(rng.integers(0, 2))) for o in offsets]
        scheme, _ = make_scheme(faults=faults)
        for _ in range(10):
            assert roundtrip(scheme, random_data(rng, 512))
        assert scheme.full

    def test_entries_allocated_lazily(self, rng):
        # a stuck-at-right fault is only entered once it bites
        scheme, _ = make_scheme(faults=[(9, 1)])
        scheme.write(np.ones(512, dtype=np.uint8))  # stuck right: no entry
        assert len(scheme.entries) == 0
        scheme.write(np.zeros(512, dtype=np.uint8))  # now stuck wrong
        assert set(scheme.entries) == {9}

    def test_replacement_refreshed_every_write(self, rng):
        scheme, _ = make_scheme(faults=[(9, 1)])
        scheme.write(np.zeros(512, dtype=np.uint8))
        assert scheme.entries[9] == 0
        scheme.write(np.ones(512, dtype=np.uint8))
        assert scheme.entries[9] == 1

    def test_budget_plus_one_fails(self, rng):
        offsets = [int(o) for o in rng.choice(512, size=7, replace=False)]
        scheme, cells = make_scheme(faults=[(o, 1) for o in offsets])
        with pytest.raises(UncorrectableError):
            # all seven faults stuck wrong for all-zero data
            scheme.write(np.zeros(512, dtype=np.uint8))
        assert scheme.retired


class TestFragileReplacements:
    def test_stuck_replacement_cell_fails(self):
        scheme, cells = make_scheme(pointers=2, faults=[(9, 1)], fragile_replacements=True)
        data = np.zeros(512, dtype=np.uint8)
        scheme.write(data)  # allocates the replacement for offset 9
        assert np.array_equal(scheme.read(), data)
        # now the replacement cell itself gets stuck at the wrong value
        scheme._replacements.inject_fault(0, stuck_value=0)
        with pytest.raises(UncorrectableError):
            scheme.write(np.ones(512, dtype=np.uint8))

    def test_healthy_replacements_work(self, rng):
        scheme, _ = make_scheme(pointers=3, faults=[(1, 1), (2, 0)], fragile_replacements=True)
        for _ in range(6):
            assert roundtrip(scheme, random_data(rng, 512))
