"""Tests for the text table renderer."""

import pytest

from repro.util.tables import render_series, render_table


class TestRenderTable:
    def test_alignment_and_separator(self):
        out = render_table(["name", "x"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert lines[0] == "| name | x  |"
        assert set(lines[1]) <= {"|", "-"}
        assert lines[2].startswith("| a ")

    def test_title(self):
        out = render_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = render_table(["v"], [[3.14159], [12345.6], [0.0001], [float("nan")]])
        assert "3.14" in out
        assert "1.23e+04" in out
        assert "0.0001" in out
        assert "-" in out

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_render_series(self):
        out = render_series("curve", [1, 2], [0.5, 0.25], x_label="f", y_label="p")
        assert out.startswith("# curve")
        assert "| 1 | 0.5" in out
