"""Tests for the cell lifetime models."""

import pytest

from repro.errors import ConfigurationError
from repro.pcm.lifetime import (
    PAPER_COV,
    PAPER_MEAN_LIFETIME,
    FixedLifetime,
    LogNormalLifetime,
    NormalLifetime,
)


class TestNormalLifetime:
    def test_paper_defaults(self):
        model = NormalLifetime()
        assert model.mean == PAPER_MEAN_LIFETIME == 1e8
        assert model.cov == PAPER_COV == 0.25

    def test_sample_statistics(self, rng):
        model = NormalLifetime()
        draws = model.sample(200_000, rng)
        assert draws.mean() == pytest.approx(1e8, rel=0.01)
        assert draws.std() == pytest.approx(0.25e8, rel=0.02)

    def test_truncated_at_one_write(self, rng):
        model = NormalLifetime(mean_lifetime=10, cov=5.0)  # mostly negative draws
        draws = model.sample(10_000, rng)
        assert draws.min() >= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NormalLifetime(mean_lifetime=0)
        with pytest.raises(ConfigurationError):
            NormalLifetime(cov=-0.1)


class TestLogNormalLifetime:
    def test_mean_and_cov(self, rng):
        model = LogNormalLifetime()
        draws = model.sample(200_000, rng)
        assert draws.mean() == pytest.approx(1e8, rel=0.01)
        assert draws.std() / draws.mean() == pytest.approx(0.25, rel=0.05)
        assert draws.min() > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogNormalLifetime(cov=0)


class TestCorrelatedLifetime:
    def test_zero_cluster_cov_matches_normal(self, rng):
        from repro.pcm.lifetime import CorrelatedLifetime

        model = CorrelatedLifetime(cluster_cov=0.0)
        draws = model.sample(100_000, rng)
        assert draws.mean() == pytest.approx(1e8, rel=0.02)
        assert draws.std() == pytest.approx(0.25e8, rel=0.05)

    def test_clusters_share_fate(self, rng):
        from repro.pcm.lifetime import CorrelatedLifetime

        model = CorrelatedLifetime(cluster_size=64, cluster_cov=1.0)
        draws = model.sample(64 * 200, rng).reshape(200, 64)
        within = draws.std(axis=1).mean()
        across = draws.mean(axis=1).std()
        # strong clustering: cluster means vary much more than a cluster's
        # internal spread relative to the independent case
        assert across > within

    def test_mean_preserved(self, rng):
        from repro.pcm.lifetime import CorrelatedLifetime

        model = CorrelatedLifetime(cluster_size=32, cluster_cov=0.5)
        draws = model.sample(200_000, rng)
        assert draws.mean() == pytest.approx(1e8, rel=0.03)
        assert model.mean == 1e8

    def test_validation(self):
        from repro.pcm.lifetime import CorrelatedLifetime

        with pytest.raises(ConfigurationError):
            CorrelatedLifetime(cluster_size=0)
        with pytest.raises(ConfigurationError):
            CorrelatedLifetime(cluster_cov=-0.5)


class TestFixedLifetime:
    def test_deterministic(self, rng):
        model = FixedLifetime(42)
        assert model.sample(5, rng).tolist() == [42.0] * 5
        assert model.mean == 42

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedLifetime(-1)
