"""Tests for the text chart renderers and their experiment integration."""

import pytest

from repro.experiments import clear_study_cache, run_experiment
from repro.util.charts import bar_chart, line_chart


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_study_cache()
    yield
    clear_study_cache()


class TestBarChart:
    def test_proportional_bars(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_zero_values_allowed(self):
        out = bar_chart(["x", "y"], [0.0, 3.0], width=6)
        assert out.splitlines()[0].count("#") == 0

    def test_title(self):
        assert bar_chart(["a"], [1.0], title="T").startswith("T\n")

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])


class TestLineChart:
    def test_series_glyphs_and_legend(self):
        out = line_chart(
            [0, 1, 2, 3],
            {"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]},
            width=20,
            height=6,
        )
        assert "o" in out and "x" in out
        assert "legend: o=up  x=down" in out

    def test_extremes_on_grid_edges(self):
        out = line_chart([0, 10], {"s": [5.0, 15.0]}, width=10, height=4)
        assert "15" in out  # y max label
        assert "5" in out  # y min label

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([0, 1], {})
        with pytest.raises(ValueError):
            line_chart([0, 1], {"s": [1.0]})
        with pytest.raises(ValueError):
            line_chart([1], {"s": [1.0]})
        with pytest.raises(ValueError):
            line_chart([2, 2], {"s": [1.0, 2.0]})


class TestExperimentCharts:
    def test_bar_experiment_chart(self):
        result = run_experiment("fig5", n_pages=2, seed=5)
        chart = result.render_chart()
        assert chart is not None
        assert "Aegis 9x61" in chart
        assert "#" in chart

    def test_line_experiment_chart(self):
        result = run_experiment(
            "fig10", trials=8, pointer_counts=(1, 4, 8), seed=5
        )
        chart = result.render_chart()
        assert chart is not None
        assert "legend:" in chart
        assert "23x23" in chart

    def test_tabular_experiment_has_no_chart(self):
        assert run_experiment("table1").render_chart() is None
