"""Tests for the pointer-based Aegis-rw-p controller."""

import numpy as np
import pytest

from repro.core.aegis_rw_p import AegisRwPScheme
from repro.core.formations import formation
from repro.errors import ConfigurationError, UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import roundtrip
from tests.conftest import random_data


def make_scheme(n_bits=512, a=9, b=61, pointers=9, faults=()):
    cells = CellArray(n_bits)
    for offset, stuck in faults:
        cells.inject_fault(offset, stuck_value=stuck)
    return AegisRwPScheme(cells, formation(a, b, n_bits), pointers), cells


class TestBasics:
    def test_identity_and_cost(self):
        scheme, _ = make_scheme()
        assert scheme.name == "Aegis-rw-p 9x61 p=9"
        # 6-bit slope counter + 9 x 6-bit pointers + 2 flags
        assert scheme.overhead_bits == 62
        # aegis_rw_hard_ftc(61) = 15, pointer bound 2p+1 = 19
        assert scheme.hard_ftc == 15

    def test_pointer_budget_validated(self):
        with pytest.raises(ConfigurationError):
            make_scheme(pointers=0)

    def test_faultless_roundtrip(self, rng):
        scheme, _ = make_scheme()
        for _ in range(5):
            assert roundtrip(scheme, random_data(rng, 512))


class TestWMode:
    def test_w_groups_within_budget(self):
        # three W faults for all-zero data -> W mode, <= 3 pointers
        scheme, _ = make_scheme(pointers=3, faults=[(0, 1), (100, 1), (400, 1)])
        data = np.zeros(512, dtype=np.uint8)
        scheme.write(data)
        assert np.array_equal(scheme.read(), data)
        assert not scheme.block_inverted
        assert 1 <= len(scheme.pointed_groups) <= 3

    def test_no_wrong_faults_no_pointers(self):
        scheme, _ = make_scheme(pointers=2, faults=[(50, 0), (60, 0)])
        data = np.zeros(512, dtype=np.uint8)  # both faults stuck right
        scheme.write(data)
        assert np.array_equal(scheme.read(), data)
        assert scheme.pointed_groups == []
        assert not scheme.block_inverted


class TestRMode:
    def test_pigeonhole_flips_to_r_mode(self):
        # many W faults, one R fault: pointing at the single R group is
        # cheaper than pointing at all the W groups
        w_faults = [(a * i, 1) for a, i in [(9, r) for r in range(8)]]  # column 0
        faults = w_faults + [(5, 0)]  # one R fault for all-zero data
        scheme, _ = make_scheme(pointers=2, faults=faults)
        data = np.zeros(512, dtype=np.uint8)
        scheme.write(data)
        assert np.array_equal(scheme.read(), data)
        assert scheme.block_inverted  # R mode engaged
        assert len(scheme.pointed_groups) <= 2

    def test_r_mode_readback_with_healthy_bits(self, rng):
        # R-mode inverts most of the block; healthy cells must still decode
        faults = [(9 * i, 1) for i in range(8)] + [(5, 0)]
        scheme, _ = make_scheme(pointers=2, faults=faults)
        payload = np.zeros(512, dtype=np.uint8)
        scheme.write(payload)
        stored = scheme.cells.read()
        # most stored bits should be inverted (block_inverted mode)
        assert stored.sum() > 256
        assert np.array_equal(scheme.read(), payload)


class TestFailure:
    def test_budget_exhaustion(self, rng):
        # pointers=1 and two W faults forced into different groups on
        # every slope (same column never collides) with an R fault blocking
        # the R-mode escape on... simpler: many scattered W faults and many
        # scattered R faults exceed one pointer both ways
        rng_local = np.random.default_rng(5)
        offsets = rng_local.choice(512, size=24, replace=False)
        faults = [(int(o), 1 if i < 12 else 0) for i, o in enumerate(offsets)]
        scheme, _ = make_scheme(pointers=1, faults=faults)
        with pytest.raises(UncorrectableError):
            scheme.write(np.zeros(512, dtype=np.uint8))
        assert scheme.retired

    def test_sequences_within_hard_ftc(self, rng):
        # any fault pattern within hard FTC must survive arbitrary data
        scheme, cells = make_scheme(pointers=5, a=17, b=31)
        hard = scheme.hard_ftc
        offsets = rng.choice(512, size=hard, replace=False)
        for offset in offsets:
            cells.inject_fault(int(offset), stuck_value=int(rng.integers(0, 2)))
            payload = random_data(rng, 512)
            scheme.write(payload)
            assert np.array_equal(scheme.read(), payload)
