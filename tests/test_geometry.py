"""Tests for the Cartesian partition geometry — Theorems 1 and 2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import (
    Rectangle,
    minimal_rectangle,
    rectangle_for,
    verify_theorem1,
    verify_theorem2,
)
from repro.errors import ConfigurationError

#: small rectangles exercised exhaustively
SMALL_RECTS = [
    rectangle_for(32, 7),  # the paper's Figure 2 example
    rectangle_for(16, 5),
    rectangle_for(9, 3),
    rectangle_for(48, 7),
    rectangle_for(30, 11),
    rectangle_for(49, 7),  # exactly full rectangle
]


class TestConstruction:
    def test_figure2_shape(self, paper_rect):
        assert (paper_rect.a_size, paper_rect.b_size) == (5, 7)
        assert paper_rect.capacity - paper_rect.n_bits == 3  # three unmapped points

    def test_b_must_be_prime(self):
        with pytest.raises(ConfigurationError):
            Rectangle(a_size=4, b_size=9, n_bits=30)

    def test_a_not_exceeding_b(self):
        with pytest.raises(ConfigurationError):
            Rectangle(a_size=8, b_size=7, n_bits=50)

    def test_rectangle_too_small(self):
        with pytest.raises(ConfigurationError):
            Rectangle(a_size=5, b_size=7, n_bits=36)

    def test_rectangle_larger_than_necessary(self):
        # 40 bits fit in 6x7 (A = ceil(40/7) = 6); A = 7 is wasteful
        with pytest.raises(ConfigurationError):
            Rectangle(a_size=7, b_size=7, n_bits=40)

    def test_paper_formations_are_valid(self):
        for n_bits, b_size, a_size in [
            (512, 23, 23),
            (512, 31, 17),
            (512, 61, 9),
            (512, 71, 8),
            (256, 17, 16),
            (256, 23, 12),
            (256, 31, 9),
        ]:
            rect = rectangle_for(n_bits, b_size)
            assert rect.a_size == a_size, f"B={b_size}: A={rect.a_size} != {a_size}"

    def test_minimal_rectangle_paper_values(self):
        assert str(minimal_rectangle(512)) == "23x23"
        assert str(minimal_rectangle(256)) == "16x17"


class TestPointMapping:
    def test_roundtrip(self, paper_rect):
        for offset in range(paper_rect.n_bits):
            a, b = paper_rect.point_of(offset)
            assert paper_rect.offset_of(a, b) == offset

    def test_unmapped_top_right(self, paper_rect):
        # the three dotted symbols of Figure 2: top row, rightmost columns
        unmapped = [
            (a, b)
            for a in range(5)
            for b in range(7)
            if paper_rect.offset_of(a, b) is None
        ]
        assert unmapped == [(2, 6), (3, 6), (4, 6)]

    def test_out_of_range_offset(self, paper_rect):
        with pytest.raises(ValueError):
            paper_rect.point_of(32)
        with pytest.raises(ValueError):
            paper_rect.point_of(-1)

    def test_out_of_range_point(self, paper_rect):
        with pytest.raises(ValueError):
            paper_rect.offset_of(5, 0)


class TestTheorem1:
    @pytest.mark.parametrize("rect", SMALL_RECTS, ids=str)
    def test_every_slope_partitions(self, rect):
        for slope in range(rect.b_size):
            assert verify_theorem1(rect, slope)

    def test_group_sizes(self, paper_rect):
        # 32 bits over 7 groups of at most A=5 bits; the three unmapped
        # points shrink whichever lines they fall on (all three lines for
        # slope 0, where they share the top row)
        for slope in range(7):
            sizes = sorted(len(paper_rect.group_members(g, slope)) for g in range(7))
            assert sum(sizes) == 32
            assert all(s <= 5 for s in sizes)
        slope0_sizes = sorted(len(paper_rect.group_members(g, 0)) for g in range(7))
        assert slope0_sizes == [2, 5, 5, 5, 5, 5, 5]


class TestTheorem2:
    @pytest.mark.parametrize("rect", SMALL_RECTS, ids=str)
    def test_exhaustive(self, rect):
        assert verify_theorem2(rect)

    @settings(max_examples=200, deadline=None)
    @given(st.data())
    def test_collision_slope_on_512(self, data):
        rect = rectangle_for(512, 61)
        o1 = data.draw(st.integers(min_value=0, max_value=511))
        o2 = data.draw(st.integers(min_value=0, max_value=511))
        if o1 == o2:
            return
        expected = rect.collision_slope(o1, o2)
        actual = [
            k for k in range(61) if rect.group_of(o1, k) == rect.group_of(o2, k)
        ]
        if expected is None:
            assert actual == []
        else:
            assert actual == [expected]

    def test_collision_slope_symmetry(self, paper_rect):
        for o1 in range(paper_rect.n_bits):
            for o2 in range(o1 + 1, paper_rect.n_bits):
                assert paper_rect.collision_slope(o1, o2) == paper_rect.collision_slope(
                    o2, o1
                )

    def test_self_collision_rejected(self, paper_rect):
        with pytest.raises(ValueError):
            paper_rect.collision_slope(3, 3)


class TestGroupQueries:
    def test_group_of_matches_members(self, paper_rect):
        for slope in range(paper_rect.b_size):
            for group in range(paper_rect.b_size):
                for offset in paper_rect.group_members(group, slope):
                    assert paper_rect.group_of(offset, slope) == group

    def test_figure2_slope0_is_rows(self, paper_rect):
        # slope 0 groups are horizontal rows: offsets 0-4, 5-9, ...
        for group in range(6):
            assert paper_rect.group_members(group, 0) == list(
                range(group * 5, min(group * 5 + 5, 32))
            )
