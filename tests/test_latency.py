"""Tests for the write-latency model."""

import pytest

from repro.analysis.latency import LatencyModel, latency_study
from repro.core.aegis import AegisScheme
from repro.core.aegis_dw import AegisDoubleWriteScheme
from repro.core.aegis_rw import AegisRwScheme
from repro.core.formations import formation
from repro.errors import ConfigurationError
from repro.schemes.base import WriteReceipt

FORM = formation(9, 61, 512)


class TestLatencyModel:
    def test_single_pass_baseline(self):
        model = LatencyModel()
        receipt = WriteReceipt(cell_writes=200, verification_reads=1)
        assert model.write_latency_ns(receipt) == pytest.approx(270.0)

    def test_passes_dominate(self):
        model = LatencyModel()
        one = model.write_latency_ns(WriteReceipt(verification_reads=1))
        three = model.write_latency_ns(WriteReceipt(verification_reads=3))
        assert three == pytest.approx(3 * one)

    def test_cache_lookup_added(self):
        model = LatencyModel()
        receipt = WriteReceipt(verification_reads=1)
        plain = model.write_latency_ns(receipt)
        cached = model.write_latency_ns(receipt, cache_assisted=True)
        assert cached == pytest.approx(plain + 5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(program_ns=-1)


class TestLatencyStudy:
    def test_rw_single_pass_at_any_fault_count(self):
        summary = latency_study(
            "rw", lambda c: AegisRwScheme(c, FORM),
            fault_count=10, cache_assisted=True, writes=15, trials=3,
        )
        assert summary.passes_per_write == pytest.approx(1.0)
        assert summary.mean_latency_ns == pytest.approx(275.0)

    def test_double_write_three_passes(self):
        summary = latency_study(
            "dw", lambda c: AegisDoubleWriteScheme(c, FORM),
            fault_count=4, writes=15, trials=3,
        )
        assert summary.passes_per_write == pytest.approx(3.0)
        assert summary.slowdown_vs_single_pass == pytest.approx(3.0, rel=0.01)

    def test_basic_aegis_slows_with_faults(self):
        clean = latency_study(
            "aegis", lambda c: AegisScheme(c, FORM),
            fault_count=0, writes=15, trials=3,
        )
        faulty = latency_study(
            "aegis", lambda c: AegisScheme(c, FORM),
            fault_count=10, writes=15, trials=3,
        )
        assert faulty.mean_latency_ns > clean.mean_latency_ns
