"""Tests for the analytic soft-FTC models, cross-checked against Monte Carlo."""

import pytest

from repro.analysis.softftc import (
    aegis_expected_soft_ftc,
    aegis_failure_probability,
    birthday_collision_probability,
    ecp_soft_ftc,
    safer_birthday_soft_ftc,
)
from repro.errors import ConfigurationError
from repro.sim.block_sim import failure_curve
from repro.sim.roster import aegis_spec


class TestBirthday:
    def test_classic_value(self):
        assert birthday_collision_probability(23, 365) == pytest.approx(0.507, abs=0.001)

    def test_boundaries(self):
        assert birthday_collision_probability(1, 10) == 0.0
        assert birthday_collision_probability(11, 10) == 1.0

    def test_invalid_bins(self):
        with pytest.raises(ConfigurationError):
            birthday_collision_probability(2, 0)


class TestAegisFailureModel:
    def test_zero_below_threshold(self):
        # fewer pairs than slopes: occupancy can never be full
        assert aegis_failure_probability(5, 61, 9) == 0.0
        assert aegis_failure_probability(1, 23, 23) == 0.0

    def test_monotone_in_faults(self):
        probs = [aegis_failure_probability(f, 31, 17) for f in range(2, 40)]
        assert all(b >= a - 1e-12 for a, b in zip(probs, probs[1:]))
        assert probs[-1] > 0.99

    def test_larger_b_tolerates_more(self):
        assert aegis_failure_probability(20, 61, 9) < aegis_failure_probability(
            20, 31, 17
        )

    def test_matches_monte_carlo_transition(self):
        """The analytic transition must sit within a few faults of the
        measured one (the i.i.d.-pairs approximation is mildly optimistic)."""
        curve = failure_curve(aegis_spec(9, 61, 512), trials=400, max_faults=40, seed=1)
        measured_half = next(
            f for f in curve.fault_counts if curve.probability_at(f) >= 0.5
        )
        analytic_half = next(
            f for f in range(2, 60) if aegis_failure_probability(f, 61, 9) >= 0.5
        )
        assert abs(measured_half - analytic_half) <= 4


class TestExpectedSoftFtc:
    def test_between_hard_and_saturation(self):
        expected = aegis_expected_soft_ftc(61, 9)
        assert 11 < expected < 61

    def test_grows_with_b(self):
        assert aegis_expected_soft_ftc(61, 9) > aegis_expected_soft_ftc(23, 23)


class TestOtherModels:
    def test_safer_birthday(self):
        # more groups -> more post-saturation headroom
        assert safer_birthday_soft_ftc(128) > safer_birthday_soft_ftc(32)

    def test_ecp(self):
        assert ecp_soft_ftc(6) == 6
