"""Tests for the aegis-repro command line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig9" in out


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "[table1 in" in out

    def test_run_small_figure(self, capsys):
        assert main(["run", "fig5", "--pages", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "Aegis 9x61" in out

    def test_run_256_bit(self, capsys):
        assert main(["run", "fig5", "--pages", "2", "--block-bits", "256"]) == 0
        assert "Aegis 12x23" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])


class TestDemo:
    def test_demo_recovers(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "100/100" in out


class TestCheck:
    def test_all_checks_pass(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "all checks passed" in out
        assert "Theorem 2" in out


class TestJsonOutput:
    def test_json_file_written(self, capsys, tmp_path):
        target = tmp_path / "results.json"
        assert main(["run", "table1", "--json", str(target)]) == 0
        import json

        payload = json.loads(target.read_text())
        assert payload[0]["experiment_id"] == "table1"
        assert payload[0]["rows"][3][0] == "Aegis"


class TestReport:
    def test_report_written(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        assert main(["report", "table1", "-o", str(target), "--pages", "2",
                     "--trials", "2"]) == 0
        content = target.read_text()
        assert "# Aegis reproduction report" in content
        assert "Table 1" in content
        assert "wrote" in capsys.readouterr().out

    def test_report_with_chart(self, tmp_path):
        target = tmp_path / "r.md"
        assert main(["report", "fig5", "-o", str(target), "--pages", "2",
                     "--trials", "2"]) == 0
        content = target.read_text()
        assert "[chart]" in content
        assert "```" in content

    def test_report_no_charts(self, tmp_path):
        target = tmp_path / "r.md"
        assert main(["report", "fig5", "-o", str(target), "--pages", "2",
                     "--trials", "2", "--no-charts"]) == 0
        assert "[chart]" not in target.read_text()


class TestSchemes:
    def test_catalogue(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "Aegis 9x61" in out
        assert "SAFER128-cache" in out
        assert "Hamming(72,64)" in out

    def test_catalogue_256(self, capsys):
        assert main(["schemes", "--block-bits", "256"]) == 0
        assert "Aegis 12x23" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_invalid_block_bits(self):
        with pytest.raises(SystemExit):
            main(["run", "fig5", "--block-bits", "300"])
