"""Every example script must run clean end to end (they are the library's
public face, so they are tested like any other deliverable)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "read back intact: True" in out
        assert "all 200 writes served" in out

    def test_hardware_walkthrough(self):
        out = run_example("hardware_walkthrough.py")
        assert "49 x 32" in out
        assert "never collide (same column)" in out

    def test_device_aging(self):
        out = run_example("device_aging.py")
        assert "half lifetime" in out
        assert "Start-Gap" in out

    def test_failure_timeline(self):
        out = run_example("failure_timeline.py")
        assert "fatal fault" in out
        assert "faults recovered" in out

    @pytest.mark.slow
    def test_os_tier(self):
        out = run_example("os_tier.py")
        assert "PAYG" in out
        assert "FREE-p" in out
        assert "pairing gain" in out

    @pytest.mark.slow
    def test_lifetime_study_small(self):
        out = run_example("lifetime_study.py", "2")
        assert "Aegis 9x61" in out
        assert "Improvement" in out
