"""The consistent-hash ring's routing contract (see ``repro/cluster/ring.py``).

Three properties the cluster layer leans on: placement is deterministic
across processes (no ``PYTHONHASHSEED`` sensitivity), membership changes
move the minimum set of keys, and no key ever routes to a retired node.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cluster import HashRing, stable_hash64
from repro.errors import ConfigurationError

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: routing keys in the tenant:address shape the cluster uses
KEYS = [f"tenant{t}:{a}" for t in range(6) for a in range(40)]

NODES = ["array0", "array1", "array2"]


def assignments(ring: HashRing) -> dict[str, str]:
    return {key: ring.node_for(key) for key in KEYS}


_SUBPROCESS_SCRIPT = """\
import json
from repro.cluster import HashRing
ring = HashRing(["array0", "array1", "array2"])
keys = [f"tenant{t}:{a}" for t in range(6) for a in range(40)]
print(json.dumps({key: ring.node_for(key) for key in keys}, sort_keys=True))
"""


class TestDeterminism:
    def test_placement_identical_across_processes(self):
        """Fresh interpreters with different hash seeds agree with us."""
        local = json.dumps(assignments(HashRing(NODES)), sort_keys=True)
        for hashseed in ("0", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=SRC)
            result = subprocess.run(
                [sys.executable, "-c", _SUBPROCESS_SCRIPT],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            assert result.stdout.strip() == local

    def test_stable_hash64_is_a_pure_function(self):
        assert stable_hash64("tenant0:0") == stable_hash64("tenant0:0")
        assert stable_hash64("tenant0:0") != stable_hash64("tenant0:1")
        assert 0 <= stable_hash64("anything") < 2**64

    def test_layout_is_order_insensitive(self):
        forward = HashRing(NODES)
        backward = HashRing(reversed(NODES))
        assert assignments(forward) == assignments(backward)

    def test_every_node_takes_a_fair_share(self):
        ring = HashRing(NODES)
        placed = assignments(ring)
        for node in NODES:
            share = sum(1 for owner in placed.values() if owner == node)
            assert share >= len(KEYS) * 0.15, f"{node} owns only {share} keys"


class TestMembershipChanges:
    def test_add_node_moves_only_keys_onto_the_new_node(self):
        ring = HashRing(NODES)
        before = assignments(ring)
        ring.add_node("array3")
        after = assignments(ring)
        moved = [key for key in KEYS if before[key] != after[key]]
        assert moved, "a new node must take over some arcs"
        assert all(after[key] == "array3" for key in moved)
        # roughly 1/n of the space, not a reshuffle
        assert len(moved) <= len(KEYS) * 0.5

    def test_remove_node_moves_only_its_keys(self):
        ring = HashRing(NODES)
        before = assignments(ring)
        ring.remove_node("array1")
        after = assignments(ring)
        for key in KEYS:
            if before[key] == "array1":
                assert after[key] != "array1"
            else:
                assert after[key] == before[key]

    def test_no_key_maps_to_a_retired_node(self):
        ring = HashRing(NODES)
        ring.remove_node("array2")
        assert "array2" not in ring
        assert "array2" not in ring.nodes
        assert all(owner != "array2" for owner in assignments(ring).values())

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing(NODES)
        before = assignments(ring)
        ring.add_node("array1")  # already present
        ring.remove_node("array9")  # never present
        assert assignments(ring) == before


class TestPreferenceWalk:
    def test_visits_every_live_node_exactly_once(self):
        ring = HashRing(NODES)
        for key in KEYS[:20]:
            walk = list(ring.preference(key))
            assert sorted(walk) == sorted(NODES)
            assert walk[0] == ring.node_for(key)

    def test_fallback_equals_post_retirement_placement(self):
        """The second preference is where the key lands if its primary
        retires — the property live migration relies on."""
        ring = HashRing(NODES)
        for key in KEYS[:20]:
            primary, fallback, *_ = ring.preference(key)
            ring.remove_node(primary)
            assert ring.node_for(key) == fallback
            ring.add_node(primary)
            assert ring.node_for(key) == primary


class TestValidation:
    def test_empty_ring_refuses_to_route(self):
        with pytest.raises(ConfigurationError):
            HashRing().node_for("tenant0:0")
        assert list(HashRing().preference("tenant0:0")) == []

    def test_empty_node_name_rejected(self):
        with pytest.raises(ConfigurationError):
            HashRing([""])

    def test_replicas_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            HashRing(NODES, replicas=0)
