"""Run the doctests embedded in library docstrings.

Docstring examples are part of the documented API contract; this test
keeps them executable so they can never rot.
"""

import doctest

import pytest

import repro.core.formations
import repro.core.geometry
import repro.analysis.softftc
import repro.util.bitops
import repro.util.charts
import repro.util.primes
import repro.util.stats
import repro.util.tables

MODULES = [
    repro.util.primes,
    repro.util.bitops,
    repro.util.stats,
    repro.util.tables,
    repro.util.charts,
    repro.core.geometry,
    repro.core.formations,
    repro.analysis.softftc,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"
