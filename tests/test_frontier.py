"""Tests for the Pareto-frontier analysis."""

import pytest

from repro.analysis.frontier import SchemePoint, pareto_frontier
from repro.experiments import clear_study_cache, run_experiment


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_study_cache()
    yield
    clear_study_cache()


def p(label, bits, cap):
    return SchemePoint(label=label, overhead_bits=bits, capability=cap)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert p("a", 10, 100).dominates(p("b", 20, 90))

    def test_equal_points_do_not_dominate(self):
        assert not p("a", 10, 100).dominates(p("b", 10, 100))

    def test_tradeoff_points_incomparable(self):
        cheap = p("cheap", 10, 50)
        strong = p("strong", 50, 100)
        assert not cheap.dominates(strong)
        assert not strong.dominates(cheap)

    def test_one_axis_tie(self):
        assert p("a", 10, 100).dominates(p("b", 10, 90))
        assert p("a", 10, 100).dominates(p("b", 20, 100))


class TestFrontier:
    def test_partition_is_complete(self):
        points = [p("a", 10, 50), p("b", 20, 100), p("c", 30, 80), p("d", 15, 40)]
        analysis = pareto_frontier(points)
        labels = {q.label for q in analysis.frontier} | {
            q.label for q, _ in analysis.dominated
        }
        assert labels == {"a", "b", "c", "d"}
        assert analysis.is_on_frontier("a")
        assert analysis.is_on_frontier("b")
        assert not analysis.is_on_frontier("c")  # b has more for less
        assert analysis.dominators_of("d") == ("a",)

    def test_frontier_sorted_by_overhead(self):
        points = [p("x", 30, 90), p("y", 10, 50), p("z", 20, 70)]
        analysis = pareto_frontier(points)
        bits = [q.overhead_bits for q in analysis.frontier]
        assert bits == sorted(bits)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pareto_frontier([])

    def test_unknown_label_has_no_dominators(self):
        analysis = pareto_frontier([p("a", 1, 1)])
        assert analysis.dominators_of("zzz") == ()


class TestFrontierExperiment:
    def test_aegis_spans_the_frontier(self):
        result = run_experiment("ext-frontier", n_pages=6, seed=4)
        status = dict(zip(result.column("Scheme"), result.column("Status")))
        for label, s in status.items():
            if label.startswith("Aegis"):
                assert s == "frontier", label
        assert status["SAFER64"] == "dominated"
        assert status["ECP6"] == "dominated"
