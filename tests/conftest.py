"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.formations import formation
from repro.core.geometry import rectangle_for


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20131207)  # MICRO-46 opening day


@pytest.fixture
def paper_rect():
    """The paper's Figure 2 example: 32 bits in a 5x7 rectangle."""
    return rectangle_for(32, 7)


@pytest.fixture
def form_9x61():
    return formation(9, 61, 512)


@pytest.fixture
def form_23x23():
    return formation(23, 23, 512)


def random_data(rng: np.random.Generator, n_bits: int) -> np.ndarray:
    return rng.integers(0, 2, size=n_bits, dtype=np.uint8)
