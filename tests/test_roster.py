"""Tests for scheme specifications and the figure rosters."""

import numpy as np
import pytest

from repro.pcm.cell import CellArray
from repro.sim.roster import (
    RW_P_CHOICES,
    aegis_dynamic_spec,
    aegis_rw_p_spec,
    aegis_rw_spec,
    aegis_spec,
    ecp_spec,
    figure5_roster,
    figure8_roster,
    figure9_roster,
    hamming_spec,
    no_protection_spec,
    rdis_spec,
    safer_cache_spec,
    safer_spec,
    variants_roster,
)


class TestSpecConsistency:
    @pytest.mark.parametrize(
        "spec",
        [
            aegis_spec(9, 61, 512),
            aegis_rw_spec(17, 31, 512),
            aegis_rw_p_spec(23, 23, 4, 512),
            ecp_spec(6, 512),
            safer_spec(64, 512),
            safer_spec(64, 512, policy="exhaustive"),
            safer_cache_spec(32, 512),
            safer_cache_spec(128, 512),
            rdis_spec(512),
            hamming_spec(512),
            aegis_dynamic_spec(23, 23, 512),
        ],
        ids=lambda s: s.key,
    )
    def test_controller_overhead_matches_spec(self, spec):
        """The spec's advertised overhead must equal the controller's."""
        controller = spec.make_controller(CellArray(spec.n_bits))
        assert controller.overhead_bits == spec.overhead_bits

    def test_checker_factories_independent(self):
        spec = aegis_spec(9, 61, 512)
        c1 = spec.make_checker(np.random.default_rng(0))
        c2 = spec.make_checker(np.random.default_rng(0))
        c1.add_fault(0, 0)
        assert c2.fault_offsets == []

    def test_overhead_fraction(self):
        assert ecp_spec(6, 512).overhead_fraction == pytest.approx(61 / 512)

    def test_no_protection(self):
        spec = no_protection_spec(512)
        assert spec.overhead_bits == 0
        assert not spec.inversion_wear

    def test_inversion_wear_flags(self):
        # cache-less partition schemes amplify wear; others do not
        assert aegis_spec(9, 61, 512).inversion_wear
        assert safer_spec(32, 512).inversion_wear
        assert not aegis_rw_spec(9, 61, 512).inversion_wear
        assert not aegis_rw_p_spec(9, 61, 9, 512).inversion_wear
        assert not ecp_spec(6, 512).inversion_wear
        assert not safer_cache_spec(32, 512).inversion_wear
        assert not rdis_spec(512).inversion_wear


class TestRosters:
    def test_figure5_512_contents(self):
        labels = [s.label for s in figure5_roster(512)]
        for expected in ("ECP6", "SAFER64", "SAFER128", "RDIS-3",
                         "Aegis 23x23", "Aegis 17x31", "Aegis 9x61"):
            assert expected in labels

    def test_figure5_256_contents(self):
        labels = [s.label for s in figure5_roster(256)]
        assert "Aegis 12x23" in labels
        assert "SAFER128" not in labels  # 512-bit only in the paper

    def test_figure5_unknown_size(self):
        with pytest.raises(ValueError):
            figure5_roster(1024)

    def test_figure8_contains_cache_variants(self):
        labels = [s.label for s in figure8_roster()]
        assert "SAFER64-cache" in labels
        assert "SAFER128-cache" in labels

    def test_figure9_has_baseline(self):
        labels = [s.label for s in figure9_roster()]
        assert "None" in labels

    def test_variants_roster_structure(self):
        specs = variants_roster()
        assert len(specs) == 3 * len(RW_P_CHOICES)
        labels = [s.label for s in specs]
        assert "Aegis-rw-p 9x61 (p=9)" in labels

    def test_unique_keys(self):
        for roster in (figure5_roster(512), figure8_roster(), figure9_roster(),
                       variants_roster()):
            keys = [s.key for s in roster]
            assert len(keys) == len(set(keys))
