"""Tests for the streaming fleet-campaign engine (`repro/fleet/`).

The headline contract: a campaign's digest — the sha256 of its merged
statistical state — is bit-identical for every worker count, either
engine, and any checkpoint/resume split of the stream, including a
SIGKILL mid-campaign.  Shard-side reduction, merge order and checkpoint
serialization all have to be exact for that to hold, so the digest
assertions here cover the whole reduction pipeline at once.
"""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.errors import ConfigurationError
from repro.experiments import run_experiment
from repro.fleet import (
    CampaignAggregate,
    CampaignSpec,
    SchemeAggregate,
    default_fleet_slos,
    default_retention_edges,
    fleet_spec,
    read_checkpoint,
    run_campaign,
)
from repro.fleet.campaign import (
    FleetTask,
    reduce_fleet_chunk,
    write_checkpoint,
)
from repro.sim.context import ExecContext
from repro.sim.parallel import PageTask, simulate_task_pages

#: small-but-real campaign: 2 schemes x 12 pages in chunks of 4 = 6 chunks
SPEC = CampaignSpec(
    schemes=("aegis-9x61", "ecp6"),
    pages_per_scheme=12,
    blocks_per_page=2,
    chunk_pages=4,
)

EDGES = SPEC.resolved_edges()
RETENTION_AGE = SPEC.resolved_retention_age()


def _ctx(**overrides) -> ExecContext:
    options = {"seed": 2013, "workers": 1, "engine": "auto"}
    options.update(overrides)
    return ExecContext(**options)


def _page_task(seed: int = 2013) -> PageTask:
    return PageTask(
        spec=fleet_spec("ecp6", SPEC.block_bits),
        blocks_per_page=SPEC.blocks_per_page,
        seed=seed,
        lifetime_model=SPEC.lifetime_model(),
        write_probability=SPEC.write_probability,
        inversion_wear_rate=SPEC.inversion_wear_rate,
    )


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted serial run every drill is compared against."""
    return run_campaign(SPEC, _ctx())


class TestSchemeAggregate:
    def test_chunked_merge_matches_direct_push(self):
        """Merging per-chunk shards in chunk order reproduces the direct
        page fold: integer state exactly, float moments to rounding (the
        merge reorders float ops, which is why the campaign digest is
        defined over one fixed fold structure, not over arbitrary ones)."""
        task = _page_task()
        results = simulate_task_pages(task, tuple(range(8)))
        direct = SchemeAggregate(EDGES, RETENTION_AGE)
        for result in results:
            direct.push(result)
        merged = SchemeAggregate(EDGES, RETENTION_AGE)
        for start in range(0, 8, 4):
            shard = SchemeAggregate(EDGES, RETENTION_AGE)
            for result in results[start : start + 4]:
                shard.push(result)
            merged.merge_state(shard.state())
        assert merged.pages == direct.pages == 8
        assert merged.retained == direct.retained
        assert merged.lifetime_hist.counts == direct.lifetime_hist.counts
        assert merged.lifetime.mean == pytest.approx(direct.lifetime.mean, rel=1e-12)
        assert merged.improvement.mean == pytest.approx(
            direct.improvement.mean, rel=1e-12
        )

    def test_chunked_merge_is_bit_reproducible(self):
        """The same shard states merged in the same order twice produce
        identical digests — the property resume actually relies on."""
        task = _page_task()
        results = simulate_task_pages(task, tuple(range(8)))
        shards = []
        for start in range(0, 8, 4):
            shard = SchemeAggregate(EDGES, RETENTION_AGE)
            for result in results[start : start + 4]:
                shard.push(result)
            shards.append(shard.state())

        def merge_all():
            merged = SchemeAggregate(EDGES, RETENTION_AGE)
            for state in shards:
                merged.merge_state(state)
            return merged

        assert merge_all().digest_state() == merge_all().digest_state()

    def test_state_round_trip_is_bit_exact(self):
        task = _page_task(seed=5)
        agg = SchemeAggregate(EDGES, RETENTION_AGE)
        for result in simulate_task_pages(task, tuple(range(6))):
            agg.push(result)
        clone = SchemeAggregate.from_state(EDGES, RETENTION_AGE, agg.state())
        assert clone.state() == agg.state()
        # JSON round-trip (what checkpoints actually do) is also exact
        rehydrated = SchemeAggregate.from_state(
            EDGES, RETENTION_AGE, json.loads(json.dumps(agg.state()))
        )
        assert rehydrated.state() == agg.state()

    def test_digest_ignores_transport_bytes(self):
        agg = SchemeAggregate(EDGES, RETENTION_AGE)
        for result in simulate_task_pages(_page_task(), (0, 1)):
            agg.push(result)
        before = agg.digest_state()
        agg.result_bytes += 12345
        agg.shard_bytes += 67
        assert agg.digest_state() == before

    def test_merge_rejects_mismatched_edges(self):
        agg = SchemeAggregate(EDGES, RETENTION_AGE)
        other = SchemeAggregate(EDGES[:4], RETENTION_AGE)
        with pytest.raises(ConfigurationError):
            agg.merge_state(other.state())

    def test_retention_curve_is_monotone_nonincreasing(self):
        agg = SchemeAggregate(EDGES, RETENTION_AGE)
        for result in simulate_task_pages(_page_task(), tuple(range(8))):
            agg.push(result)
        curve = agg.retention_curve()
        assert len(curve) == len(EDGES)
        alive = [fraction for _, fraction in curve]
        assert all(a >= b for a, b in zip(alive, alive[1:]))
        assert all(0.0 <= fraction <= 1.0 for fraction in alive)
        assert 0.0 <= agg.retention <= 1.0

    def test_default_edges_reject_nonpositive_scale(self):
        with pytest.raises(ConfigurationError):
            default_retention_edges(0.0)

    def test_worker_shard_measures_what_it_replaced(self):
        task = FleetTask(
            page_task=_page_task(),
            edges=EDGES,
            retention_age=RETENTION_AGE,
        )
        shard = reduce_fleet_chunk(task, (0, 1, 2, 3))
        assert shard["pages"] == 4
        assert shard["chunks"] == 1
        assert shard["result_bytes"] > 0  # the bytes the full path would ship


class TestCampaignDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("engine", ["auto", "scalar"])
    def test_digest_invariant_across_workers_and_engines(
        self, reference, workers, engine
    ):
        report = run_campaign(SPEC, _ctx(workers=workers, engine=engine))
        assert report.digest == reference.digest
        assert report.pages == reference.pages
        assert report.completed

    def test_seed_changes_the_digest(self, reference):
        assert run_campaign(SPEC, _ctx(seed=99)).digest != reference.digest

    def test_registry_counters_match_the_aggregate(self, reference):
        counters = reference.registry.snapshot()["counters"]
        total_pages = sum(
            value
            for series, value in counters.items()
            if series.startswith("fleet_pages_total")
        )
        assert total_pages == reference.pages == SPEC.total_pages()

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(schemes=("aegis-9x61", "not-a-scheme"))

    def test_fleet_spec_rejects_unknown_key(self):
        with pytest.raises(ConfigurationError):
            fleet_spec("nope")


class TestCheckpointResume:
    @pytest.mark.parametrize("stop_after", [1, 3, 5])
    def test_resumed_digest_matches_uninterrupted(
        self, reference, tmp_path, stop_after
    ):
        """Kill the campaign at several cursor positions (including a
        scheme boundary at chunk 3) and resume: bit-identical digest."""
        path = str(tmp_path / "fleet.ckpt")
        partial = run_campaign(
            SPEC, _ctx(), checkpoint_path=path, stop_after_chunks=stop_after
        )
        assert not partial.completed
        assert partial.digest != reference.digest
        resumed = run_campaign(SPEC, _ctx(), checkpoint_path=path, resume=True)
        assert resumed.completed
        assert resumed.resumed_from == partial.cursor
        assert resumed.digest == reference.digest
        assert resumed.pages == reference.pages
        # transport accounting carries across the split too
        assert resumed.aggregate.result_bytes == reference.aggregate.result_bytes

    @pytest.mark.parametrize("workers,engine", [(2, "auto"), (1, "scalar")])
    def test_resume_with_different_fanout(self, reference, tmp_path, workers, engine):
        """The checkpoint pins what is simulated, never how: resuming
        with a different worker count or engine is supported and exact."""
        path = str(tmp_path / "fleet.ckpt")
        run_campaign(
            SPEC,
            _ctx(workers=2),
            checkpoint_path=path,
            stop_after_chunks=2,
        )
        resumed = run_campaign(
            SPEC,
            _ctx(workers=workers, engine=engine),
            checkpoint_path=path,
            resume=True,
        )
        assert resumed.digest == reference.digest

    def test_resume_refuses_different_seed(self, tmp_path):
        path = str(tmp_path / "fleet.ckpt")
        run_campaign(SPEC, _ctx(), checkpoint_path=path, stop_after_chunks=1)
        with pytest.raises(ConfigurationError, match="digest mismatch"):
            run_campaign(SPEC, _ctx(seed=42), checkpoint_path=path, resume=True)

    def test_resume_refuses_different_parameters(self, tmp_path):
        path = str(tmp_path / "fleet.ckpt")
        run_campaign(SPEC, _ctx(), checkpoint_path=path, stop_after_chunks=1)
        bigger = CampaignSpec(
            schemes=SPEC.schemes,
            pages_per_scheme=SPEC.pages_per_scheme * 2,
            blocks_per_page=SPEC.blocks_per_page,
            chunk_pages=SPEC.chunk_pages,
        )
        with pytest.raises(ConfigurationError, match="digest mismatch"):
            run_campaign(bigger, _ctx(), checkpoint_path=path, resume=True)

    def test_resume_without_checkpoint_refused(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no checkpoint"):
            run_campaign(
                SPEC,
                _ctx(),
                checkpoint_path=str(tmp_path / "missing.ckpt"),
                resume=True,
            )

    def test_resume_of_finished_campaign_is_a_noop(self, reference, tmp_path):
        path = str(tmp_path / "fleet.ckpt")
        run_campaign(SPEC, _ctx(), checkpoint_path=path)
        resumed = run_campaign(SPEC, _ctx(), checkpoint_path=path, resume=True)
        assert resumed.completed
        assert resumed.pages == reference.pages
        assert resumed.digest == reference.digest

    def test_checkpoint_file_round_trips(self, tmp_path):
        path = str(tmp_path / "fleet.ckpt")
        partial = run_campaign(
            SPEC, _ctx(), checkpoint_path=path, stop_after_chunks=2
        )
        meta, aggregate = read_checkpoint(path)
        assert meta["config_digest"] == SPEC.config_digest(2013)
        assert (meta["cursor"]["scheme"], meta["cursor"]["chunk"]) == partial.cursor
        assert aggregate.digest() == partial.digest
        # writing the restored aggregate back is byte-stable
        write_checkpoint(str(tmp_path / "again.ckpt"), meta, aggregate)
        meta2, aggregate2 = read_checkpoint(str(tmp_path / "again.ckpt"))
        assert meta2 == meta
        assert aggregate2.digest() == aggregate.digest()

    def test_checkpoint_version_gate(self, tmp_path):
        path = tmp_path / "old.ckpt"
        path.write_text(json.dumps({"record": "meta", "version": 999}) + "\n")
        with pytest.raises(ConfigurationError, match="version"):
            read_checkpoint(str(path))


class TestKillDrill:
    def test_sigkilled_campaign_resumes_bit_identically(self, reference, tmp_path):
        """The out-of-process drill: SIGKILL the CLI right after a
        checkpoint lands, resume in-process, compare digests."""
        checkpoint = str(tmp_path / "fleet.ckpt")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "fleet-bench",
                "--schemes", "aegis-9x61,ecp6",
                "--pages", "12",
                "--blocks", "2",
                "--chunk-pages", "4",
                "--seed", "2013",
                "--workers", "1",
                "--checkpoint", checkpoint,
                "--checkpoint-interval", "1",
                "--kill-after-checkpoints", "2",
            ],
            env=env,
            capture_output=True,
            timeout=300,
        )
        assert proc.returncode == -9, proc.stderr.decode()
        assert os.path.exists(checkpoint)
        resumed = run_campaign(SPEC, _ctx(), checkpoint_path=checkpoint, resume=True)
        assert resumed.completed
        assert resumed.resumed_from is not None
        assert resumed.digest == reference.digest


class TestObservabilityFeed:
    def test_series_export_renders_through_slo_report(self, reference, tmp_path):
        path = str(tmp_path / "fleet_series.jsonl")
        lines = reference.write_series(path)
        assert lines > 0
        with open(path) as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        assert len(records) == lines
        kinds = {record.get("record") for record in records}
        assert "slo" in kinds

    def test_default_slos_cover_every_scheme_plus_ipc(self):
        specs = default_fleet_slos(SPEC.schemes)
        names = [spec.name for spec in specs]
        for scheme in SPEC.schemes:
            assert f"fleet_retention_{scheme}" in names
        assert "fleet_ipc_overhead" in names

    def test_report_dict_is_json_serializable(self, reference):
        payload = json.loads(json.dumps(reference.to_dict()))
        assert payload["digest"] == reference.digest
        assert payload["reduction_ratio"] == reference.reduction_ratio
        assert {row["scheme"] for row in payload["schemes"]} == set(SPEC.schemes)

    def test_resumed_series_counters_match(self, reference, tmp_path):
        """The rebuilt registry of a resumed run ends at the same counter
        totals as the uninterrupted run's."""
        path = str(tmp_path / "fleet.ckpt")
        run_campaign(SPEC, _ctx(), checkpoint_path=path, stop_after_chunks=3)
        resumed = run_campaign(SPEC, _ctx(), checkpoint_path=path, resume=True)

        def counters(report):
            return {
                series: value
                for series, value in report.registry.snapshot()["counters"].items()
                if series.startswith("fleet_") and "bytes" not in series
            }

        assert counters(resumed) == counters(reference)


class TestSurfaces:
    def test_ext_fleet_experiment(self):
        result = run_experiment(
            "ext-fleet", _ctx(), n_pages=4, blocks_per_page=2, chunk_pages=2
        )
        assert result.experiment_id == "ext-fleet"
        assert len(result.rows) == 4  # aegis, ecp, safer, hamming
        schemes = [row[0] for row in result.rows]
        assert "aegis-9x61" in schemes and "hamming" in schemes

    def test_cli_fleet_bench_smoke(self, tmp_path, capsys):
        from repro.cli import main

        json_path = str(tmp_path / "report.json")
        series_path = str(tmp_path / "series.jsonl")
        code = main(
            [
                "fleet-bench",
                "--schemes", "ecp6",
                "--pages", "8",
                "--blocks", "2",
                "--chunk-pages", "4",
                "--workers", "1",
                "--json", json_path,
                "--series", series_path,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign digest:" in out
        assert os.path.exists(json_path) and os.path.exists(series_path)
