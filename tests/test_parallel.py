"""Tests for the parallel execution layer (`repro/sim/parallel.py`).

The headline property: the worker count is a pure performance knob — a
study's every sampled number is identical for ``workers=1`` and
``workers=N``, because page ``i`` always draws from the substream
``rng_for(seed, i)`` regardless of which process simulates it.
"""

import os
import pickle
from concurrent.futures import Future

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.page_sim import run_page_study, simulate_page
from repro.sim.parallel import (
    DEFAULT_CHUNK_PAGES,
    BrokenProcessPoolError,
    PageTask,
    SimExecutor,
    StudyRunner,
    _chunked,
    resolve_workers,
    simulate_task_page,
    simulate_task_pages,
)
from repro.sim.rng import rng_for
from repro.sim.roster import (
    aegis_rw_p_spec,
    aegis_spec,
    ecp_spec,
    figure5_roster,
    hamming_spec,
    no_protection_spec,
    rdis_spec,
    safer_cache_spec,
    safer_spec,
    variants_roster,
)

#: the representative roster the determinism contract is asserted on
REPRESENTATIVE = [
    aegis_spec(9, 61, 512),
    safer_spec(64, 512),
    ecp_spec(6, 512),
]


class TestSpecPicklability:
    """Specs must cross the process boundary: no lambdas anywhere."""

    @pytest.mark.parametrize(
        "spec",
        figure5_roster(512)
        + variants_roster(512)
        + [
            safer_cache_spec(64, 512),
            rdis_spec(512),
            hamming_spec(512),
            no_protection_spec(512),
        ],
        ids=lambda s: s.key,
    )
    def test_spec_roundtrips_through_pickle(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.key == spec.key
        assert clone.overhead_bits == spec.overhead_bits
        # the reconstructed factories must produce working objects
        checker = clone.make_checker(np.random.default_rng(0))
        assert checker.add_fault(1, 0) in (True, False)

    def test_checker_from_unpickled_spec_matches_original(self):
        spec = aegis_rw_p_spec(9, 61, 9, 512)
        clone = pickle.loads(pickle.dumps(spec))
        r1 = simulate_page(spec, 4, np.random.default_rng(3))
        r2 = simulate_page(clone, 4, np.random.default_rng(3))
        assert r1 == r2

    def test_page_task_is_picklable(self):
        task = PageTask(
            spec=aegis_spec(9, 61, 512),
            blocks_per_page=4,
            seed=7,
            lifetime_model=None,
            write_probability=0.5,
            inversion_wear_rate=0.25,
        )
        clone = pickle.loads(pickle.dumps(task))
        assert simulate_task_page(clone, 0) == simulate_task_page(task, 0)


class TestWorkerResolution:
    def test_none_and_zero_mean_all_cores(self):
        import os

        assert resolve_workers(None) == (os.cpu_count() or 1)
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_explicit_count(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(-2)

    def test_bad_chunk_pages_rejected(self):
        with pytest.raises(ConfigurationError):
            SimExecutor(2, chunk_pages=0)

    def test_single_worker_is_serial(self):
        assert not SimExecutor(1).parallel


class TestExecutorOrdering:
    def test_results_come_back_in_page_order(self):
        task = PageTask(
            spec=ecp_spec(2, 512),
            blocks_per_page=4,
            seed=11,
            lifetime_model=None,
            write_probability=0.5,
            inversion_wear_rate=0.25,
        )
        indices = list(range(3 * DEFAULT_CHUNK_PAGES + 1))
        with SimExecutor(2) as executor:
            pooled = executor.run_pages(task, indices)
        serial = [simulate_task_page(task, i) for i in indices]
        assert pooled == serial

    def test_empty_index_list(self):
        task = PageTask(
            spec=ecp_spec(1, 512),
            blocks_per_page=2,
            seed=0,
            lifetime_model=None,
            write_probability=0.5,
            inversion_wear_rate=0.25,
        )
        assert SimExecutor(2).run_pages(task, []) == []


class TestStudyDeterminism:
    """workers=1 and workers=4 must be bit-identical, not just close."""

    @pytest.mark.parametrize("spec", REPRESENTATIVE, ids=lambda s: s.key)
    def test_worker_count_does_not_change_results(self, spec):
        serial = run_page_study(
            spec, n_pages=10, blocks_per_page=8, seed=17, workers=1
        )
        pooled = run_page_study(
            spec, n_pages=10, blocks_per_page=8, seed=17, workers=4
        )
        assert pooled.results == serial.results
        assert pooled.faults == serial.faults
        assert pooled.lifetime == serial.lifetime
        assert pooled.baseline_lifetime == serial.baseline_lifetime

    def test_adaptive_stopping_page_count_matches_serial(self):
        """Sequential stopping must truncate speculative waves at exactly
        the page where the serial loop stops."""
        kwargs = dict(
            n_pages=8, seed=13, target_relative_ci=0.15, max_pages=64
        )
        serial = run_page_study(ecp_spec(2, 512), workers=1, **kwargs)
        pooled = run_page_study(ecp_spec(2, 512), workers=3, **kwargs)
        assert len(pooled.results) == len(serial.results)
        assert pooled.results == serial.results

    def test_parallel_matches_direct_serial_engine(self):
        """Cross-validation against simulate_page called by hand."""
        spec = aegis_spec(9, 61, 512)
        study = run_page_study(
            spec, n_pages=6, blocks_per_page=8, seed=23, workers=2
        )
        by_hand = tuple(
            simulate_page(spec, 8, rng_for(23, page)) for page in range(6)
        )
        assert study.results == by_hand


class TestObserverForcesSerial:
    def test_observer_sees_all_pages_in_order(self):
        events = []
        study = run_page_study(
            ecp_spec(2, 512),
            n_pages=4,
            blocks_per_page=4,
            seed=5,
            workers=4,  # must be ignored: callbacks cannot cross processes
            observer=events.append,
        )
        fatal = [e for e in events if e.fatal]
        assert len(fatal) == 4
        total_faults = sum(r.faults_recovered for r in study.results)
        assert len(events) == total_faults + 4

    def test_observer_run_matches_unobserved_run(self):
        plain = run_page_study(
            ecp_spec(2, 512), n_pages=4, blocks_per_page=4, seed=5, workers=1
        )
        observed = run_page_study(
            ecp_spec(2, 512),
            n_pages=4,
            blocks_per_page=4,
            seed=5,
            workers=4,
            observer=lambda event: None,
        )
        assert observed.results == plain.results


class TestPoolFallback:
    def test_broken_pool_recomputes_serially(self, monkeypatch):
        import repro.sim.parallel as parallel_mod

        def refuse(*args, **kwargs):
            raise OSError("no processes in this sandbox")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", refuse)
        study = run_page_study(
            ecp_spec(2, 512), n_pages=10, blocks_per_page=4, seed=5, workers=4
        )
        reference = run_page_study(
            ecp_spec(2, 512), n_pages=10, blocks_per_page=4, seed=5, workers=1
        )
        assert study.results == reference.results


def _page_task(seed: int = 11, blocks: int = 4) -> PageTask:
    return PageTask(
        spec=ecp_spec(2, 512),
        blocks_per_page=blocks,
        seed=seed,
        lifetime_model=None,
        write_probability=0.5,
        inversion_wear_rate=0.25,
    )


class TestWindowedGather:
    """The bounded-window reorder machinery behind every scatter."""

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            SimExecutor(2, window_chunks=0)

    def test_emits_in_order_under_adversarial_completion(self):
        """Futures complete in reverse submission order; emission must
        still be submission order."""
        executor = SimExecutor(2, window_chunks=3)
        total = 10
        unresolved: list[tuple[int, Future]] = []
        submitted: list[int] = []

        def submit(index: int) -> Future:
            future: Future = Future()
            submitted.append(index)
            unresolved.append((index, future))
            if len(unresolved) == executor.window_chunks or index == total - 1:
                for chunk_index, pending in reversed(unresolved):
                    pending.set_result([chunk_index])
                unresolved.clear()
            return future

        results = list(executor._gather_windowed(submit, total))
        assert submitted == list(range(total))
        assert results == [[index] for index in range(total)]

    def test_window_bounds_in_flight_futures(self):
        """At no point may more than window_chunks submissions be
        outstanding — submission is throttled, not eager."""
        executor = SimExecutor(2, window_chunks=3)
        total = 8
        unresolved: dict[int, Future] = {}
        violations: list[int] = []

        def resolve_lowest() -> None:
            lowest = min(unresolved)
            unresolved.pop(lowest).set_result([lowest])

        def submit(index: int) -> Future:
            future: Future = Future()
            unresolved[index] = future
            if len(unresolved) > executor.window_chunks:
                violations.append(index)
            if index == total - 1:
                while unresolved:
                    resolve_lowest()
            elif len(unresolved) == executor.window_chunks:
                resolve_lowest()
            return future

        results = list(executor._gather_windowed(submit, total))
        assert violations == []
        assert results == [[index] for index in range(total)]


class TestImapChunks:
    """Streaming chunk fan-out: chunk order, fallback, tail recompute."""

    def test_streams_chunk_results_in_order(self):
        task = _page_task()
        chunks = [(0, 1), (2, 3, 4), (5,), (6, 7)]
        expected = [
            [simulate_task_page(task, index) for index in chunk] for chunk in chunks
        ]
        with SimExecutor(1) as serial:
            assert (
                list(serial.imap_chunks(simulate_task_pages, task, chunks)) == expected
            )
        with SimExecutor(2, window_chunks=2) as pooled:
            assert (
                list(pooled.imap_chunks(simulate_task_pages, task, chunks)) == expected
            )

    def test_empty_chunk_list(self):
        with SimExecutor(2) as executor:
            assert list(executor.imap_chunks(simulate_task_pages, _page_task(), [])) == []

    def test_refused_pool_streams_serially(self, monkeypatch):
        import repro.sim.parallel as parallel_mod

        def refuse(*args, **kwargs):
            raise OSError("no processes in this sandbox")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", refuse)
        task = _page_task(seed=3)
        chunks = _chunked(range(6), 2)
        executor = SimExecutor(4)
        streamed = list(executor.imap_chunks(simulate_task_pages, task, chunks))
        assert streamed == [list(simulate_task_pages(task, chunk)) for chunk in chunks]

    def test_pool_break_mid_stream_recomputes_only_the_tail(self):
        """A pool that dies after the first chunk must not lose the
        stream: the unemitted tail is recomputed serially and the full
        sequence equals the serial run."""
        task = _page_task(seed=9, blocks=2)
        chunks = _chunked(range(8), 2)
        executor = SimExecutor(2, window_chunks=1)
        pool = executor._ensure_pool(len(chunks))
        if pool is None:
            pytest.skip("multiprocessing unavailable on this platform")
        real_submit = pool.submit
        calls = {"count": 0}

        def flaky_submit(fn, *args):
            calls["count"] += 1
            if calls["count"] > 1:
                raise BrokenProcessPoolError("worker killed")
            return real_submit(fn, *args)

        pool.submit = flaky_submit
        try:
            streamed = list(executor.imap_chunks(simulate_task_pages, task, chunks))
        finally:
            executor.close()
        assert executor._pool_broken
        assert streamed == [
            list(simulate_task_pages(task, chunk)) for chunk in chunks
        ]


def _mark_worker_warm(directory: str) -> None:
    """Module-level pool initializer: leave one marker file per worker."""
    with open(os.path.join(directory, f"worker-{os.getpid()}"), "w") as handle:
        handle.write("warm")


class TestPersistentPool:
    def test_pool_persists_across_scatters(self):
        task = _page_task(seed=21, blocks=2)
        with SimExecutor(2, chunk_pages=2) as executor:
            first = executor.run_pages(task, range(6))
            pool = executor._pool
            second = executor.run_pages(task, range(6))
            if pool is not None:  # skip the identity check if pools refuse
                assert executor._pool is pool
        assert first == second

    def test_initializer_runs_once_per_worker(self, tmp_path):
        task = _page_task(seed=5, blocks=2)
        with SimExecutor(
            2,
            chunk_pages=1,
            initializer=_mark_worker_warm,
            initargs=(str(tmp_path),),
        ) as executor:
            pooled = executor.run_pages(task, range(4))
            executor.run_pages(task, range(4))
            started = executor._pool is not None
        assert pooled == [simulate_task_page(task, index) for index in range(4)]
        if started:
            marks = list(tmp_path.iterdir())
            # one marker per worker process, never per scatter or per chunk
            assert 1 <= len(marks) <= 2

    def test_study_runner_leaves_borrowed_executor_open(self):
        executor = SimExecutor(1)
        runner = StudyRunner("borrow", executor=executor)
        assert not runner._owns_executor
        runner.close()
        # the borrowed executor must still be usable after the study closes
        task = _page_task(seed=2, blocks=2)
        assert executor.run_pages(task, [0]) == [simulate_task_page(task, 0)]
