"""Unit tests for repro.util.primes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.primes import is_prime, mod_inverse, next_prime, primes_in_range


class TestIsPrime:
    def test_small_values(self):
        assert [n for n in range(30) if is_prime(n)] == [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
        ]

    def test_negative_and_zero(self):
        assert not is_prime(-7)
        assert not is_prime(0)
        assert not is_prime(1)

    def test_square_of_prime(self):
        assert not is_prime(49)
        assert not is_prime(121)

    def test_large_prime(self):
        assert is_prime(7919)
        assert not is_prime(7917)


class TestNextPrime:
    def test_at_prime(self):
        assert next_prime(23) == 23

    def test_between_primes(self):
        assert next_prime(24) == 29
        assert next_prime(62) == 67

    def test_below_two(self):
        assert next_prime(-5) == 2
        assert next_prime(0) == 2

    @given(st.integers(min_value=0, max_value=5000))
    def test_result_is_prime_and_minimal(self, n):
        p = next_prime(n)
        assert p >= n
        assert is_prime(p)
        assert not any(is_prime(q) for q in range(max(n, 2), p))


class TestPrimesInRange:
    def test_paper_b_candidates(self):
        # primes usable as B for 512-bit blocks up to 71
        assert primes_in_range(23, 72) == [23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71]


class TestModInverse:
    @given(st.sampled_from([7, 23, 31, 61, 71]), st.integers(min_value=1, max_value=1000))
    def test_inverse_property(self, modulus, value):
        if value % modulus == 0:
            return
        inv = mod_inverse(value, modulus)
        assert (value * inv) % modulus == 1
        assert 0 < inv < modulus

    def test_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            mod_inverse(0, 7)
        with pytest.raises(ZeroDivisionError):
            mod_inverse(14, 7)
