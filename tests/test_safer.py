"""Tests for the SAFER baseline (both policies) and SAFER-cache."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import roundtrip
from repro.schemes.safer import (
    SaferCacheScheme,
    SaferScheme,
    best_extension,
    colliding_pairs,
    grow_vector_for_mixing,
    separates,
    vector_value,
)
from tests.conftest import random_data


def make_scheme(group_count=32, n_bits=512, faults=(), **kwargs):
    cells = CellArray(n_bits)
    for offset, stuck in faults:
        cells.inject_fault(offset, stuck_value=stuck)
    return SaferScheme(cells, group_count, **kwargs), cells


class TestVectorMath:
    def test_vector_value_packs_lsb_first(self):
        assert vector_value(0b101101, (0, 2, 5)) == 0b111
        assert vector_value(0b101101, (1, 4)) == 0b00

    def test_separates(self):
        assert separates((0,), [0b0, 0b1])
        assert not separates((1,), [0b0, 0b1])
        assert separates((), [7])
        assert not separates((), [1, 2])

    def test_colliding_pairs(self):
        # offsets 0,1,2,3 under vector (1,): values 0,0,1,1 -> two pairs
        assert colliding_pairs((1,), [0, 1, 2, 3]) == 2

    def test_best_extension_prefers_fewest_collisions(self):
        # colliding pair (0, 3) differs at positions 0 and 1; with faults
        # {0, 3, 1}: adding position 0 leaves 0|1 colliding? values:
        # pos0 -> 0:0, 3:1, 1:1 (one pair); pos1 -> 0:0, 3:1, 1:0 (one pair)
        choice = best_extension((), [0, 3, 1], (0, 3), 9)
        assert choice in (0, 1)

    def test_best_extension_none_when_exhausted(self):
        # all distinguishing positions already used
        assert best_extension((0,), [0, 1], (0, 1), 1) is None


class TestSaferScheme:
    def test_identity(self):
        scheme, _ = make_scheme(32)
        assert scheme.name == "SAFER32"
        assert scheme.overhead_bits == 55  # Table 1
        assert scheme.hard_ftc == 6

    def test_group_count_validation(self):
        with pytest.raises(ConfigurationError):
            make_scheme(group_count=48)
        with pytest.raises(ConfigurationError):
            make_scheme(group_count=1024)
        with pytest.raises(ConfigurationError):
            make_scheme(policy="bogus")

    @pytest.mark.parametrize("policy", ["incremental", "exhaustive"])
    def test_hard_ftc_recoverable(self, rng, policy):
        # any m+1 = 6 faults must be tolerated by SAFER32 under either policy
        for _ in range(5):
            offsets = rng.choice(512, size=6, replace=False)
            faults = [(int(o), int(rng.integers(0, 2))) for o in offsets]
            scheme, _ = make_scheme(32, faults=faults, policy=policy)
            for _ in range(5):
                assert roundtrip(scheme, random_data(rng, 512))

    def test_collision_extends_vector(self):
        # offsets 0 and 1 differ only at address bit 0
        scheme, _ = make_scheme(32, faults=[(0, 1), (1, 1)], policy="incremental")
        data = np.zeros(512, dtype=np.uint8)
        scheme.write(data)
        assert np.array_equal(scheme.read(), data)
        assert 0 in scheme.positions  # bit 0 is the only distinguishing position

    def test_incremental_vector_only_grows(self, rng):
        scheme, cells = make_scheme(32, policy="incremental")
        seen = [scheme.positions]
        for offset in rng.choice(512, size=6, replace=False):
            cells.inject_fault(int(offset), stuck_value=int(rng.integers(0, 2)))
            scheme.write(random_data(rng, 512))
            assert set(seen[-1]) <= set(scheme.positions)
            seen.append(scheme.positions)

    def test_exhaustive_outlives_incremental(self, rng):
        """The generous policy must never die before the faithful one on
        the same fault sequence."""
        for trial in range(5):
            stream = np.random.default_rng(trial)
            offsets = [int(o) for o in stream.choice(512, size=30, replace=False)]
            deaths = {}
            for policy in ("incremental", "exhaustive"):
                scheme, cells = make_scheme(32, policy=policy)
                for count, offset in enumerate(offsets, start=1):
                    cells.inject_fault(offset, stuck_value=int(stream.integers(0, 2)))
                    try:
                        scheme.write(random_data(stream, 512))
                    except UncorrectableError:
                        deaths[policy] = count
                        break
                else:
                    deaths[policy] = len(offsets) + 1
            assert deaths["exhaustive"] >= deaths["incremental"]


class TestGrowVectorForMixing:
    def test_no_mixing_keeps_vector(self):
        # all faults the same type: the empty vector already works
        assert grow_vector_for_mixing((), [3, 5, 9], [], 5, 9) == ()
        assert grow_vector_for_mixing((), [], [3, 5], 5, 9) == ()

    def test_mixing_pair_grows_once(self):
        # offsets 0 (W) and 1 (R) differ only at position 0
        grown = grow_vector_for_mixing((), [0], [1], 5, 9)
        assert grown == (0,)

    def test_grow_only(self):
        grown = grow_vector_for_mixing((3,), [0], [1], 5, 9)
        assert grown is not None
        assert grown[0] == 3  # existing positions preserved

    def test_exhaustion_returns_none(self):
        # W at 0 and R at 1 with a max of 0 positions: unrecoverable
        assert grow_vector_for_mixing((), [0], [1], 0, 9) is None

    def test_result_has_no_mixing(self, rng):
        for _ in range(20):
            wrong = [int(o) for o in rng.choice(512, size=5, replace=False)]
            right = [
                int(o) for o in rng.choice(512, size=5, replace=False)
                if int(o) not in wrong
            ]
            grown = grow_vector_for_mixing((), wrong, right, 6, 9)
            if grown is None:
                continue
            w_groups = {vector_value(o, grown) for o in wrong}
            r_groups = {vector_value(o, grown) for o in right}
            assert not (w_groups & r_groups)


class TestSaferCache:
    def test_identity(self):
        cells = CellArray(512)
        scheme = SaferCacheScheme(cells, 32)
        assert scheme.name == "SAFER32-cache"
        assert scheme.overhead_bits == 55

    def test_same_type_faults_share_group(self):
        # two W faults at offsets differing in every selected position
        # would collide for plain SAFER with an empty vector; the cache
        # variant tolerates them in one group
        cells = CellArray(512)
        cells.inject_fault(0, stuck_value=1)
        cells.inject_fault(1, stuck_value=1)
        scheme = SaferCacheScheme(cells, 32)
        data = np.zeros(512, dtype=np.uint8)
        receipt = scheme.write(data)
        assert np.array_equal(scheme.read(), data)
        assert receipt.verification_reads == 1

    def test_many_faults_with_cache(self, rng):
        cells = CellArray(512)
        for offset in rng.choice(512, size=10, replace=False):
            cells.inject_fault(int(offset), stuck_value=int(rng.integers(0, 2)))
        scheme = SaferCacheScheme(cells, 64)
        successes = sum(
            roundtrip(scheme, random_data(rng, 512)) for _ in range(20)
        )
        assert successes == 20
