"""Tests for the dynamic page-pairing extension."""

import pytest

from repro.pairing.pairing import (
    FailedPage,
    compatible,
    pair_failed_pages,
    usable_page_equivalents,
)
from repro.pairing.sim import pairing_study
from repro.sim.roster import ecp_spec


def fp(page_id, *blocks):
    return FailedPage(page_id=page_id, failed_blocks=frozenset(blocks))


class TestCompatibility:
    def test_disjoint_pages_compatible(self):
        assert compatible(fp(0, 1, 2), fp(1, 3, 4))

    def test_overlapping_pages_incompatible(self):
        assert not compatible(fp(0, 1, 2), fp(1, 2, 3))

    def test_failed_page_needs_faults(self):
        with pytest.raises(ValueError):
            FailedPage(page_id=0, failed_blocks=frozenset())


class TestMatching:
    def test_simple_pair(self):
        pairs, unpaired = pair_failed_pages([fp(0, 1), fp(1, 2)])
        assert len(pairs) == 1
        assert unpaired == []

    def test_conflict_leaves_one_out(self):
        pages = [fp(0, 1), fp(1, 1), fp(2, 2)]
        pairs, unpaired = pair_failed_pages(pages)
        assert len(pairs) == 1
        assert len(unpaired) == 1
        a, b = pairs[0]
        assert compatible(a, b)

    def test_maximum_cardinality_beats_greedy(self):
        # pages: A={1}, B={2}, C={1,2} -- greedy pairing A-B strands C,
        # but C is incompatible with both anyway; construct a real case:
        # A={1}, B={2}, C={3}, D={1,2}: matching A-D impossible (share 1);
        # max matching pairs (A,B) and ... A-B, C-D? C={3}, D={1,2}
        # compatible -> 2 pairs total.
        pages = [fp(0, 1), fp(1, 2), fp(2, 3), fp(3, 1, 2)]
        pairs, unpaired = pair_failed_pages(pages)
        assert len(pairs) == 2
        assert unpaired == []
        for a, b in pairs:
            assert compatible(a, b)

    def test_every_page_appears_once(self):
        pages = [fp(i, i % 3, (i + 1) % 5) for i in range(9)]
        pairs, unpaired = pair_failed_pages(pages)
        seen = [p.page_id for a, b in pairs for p in (a, b)]
        seen += [p.page_id for p in unpaired]
        assert sorted(seen) == list(range(9))

    def test_usable_equivalents(self):
        assert usable_page_equivalents(5, [fp(0, 1), fp(1, 2)]) == 6.0


class TestPairingStudy:
    def test_study_shape_and_invariants(self):
        study = pairing_study(
            ecp_spec(2, 512), n_pages=10, blocks_per_page=8, grid_points=6, seed=2
        )
        assert len(study.ages) == 6
        # pairing never loses capacity and never exceeds what pairing can give
        for without, with_pairing in zip(study.usable_without, study.usable_with):
            assert with_pairing >= without
            assert with_pairing <= without + 0.5 + 1e-9
        # usable capacity decays over time
        assert study.usable_without[0] >= study.usable_without[-1]
        assert study.peak_gain >= 0
