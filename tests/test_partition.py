"""Tests for the vectorised partition engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import rectangle_for
from repro.core.partition import AegisPartition, partition_for


@pytest.fixture
def partition(paper_rect) -> AegisPartition:
    return partition_for(paper_rect)


class TestTables:
    def test_matches_arithmetic(self, paper_rect, partition):
        for slope in range(paper_rect.b_size):
            for offset in range(paper_rect.n_bits):
                assert partition.group_of(offset, slope) == paper_rect.group_of(
                    offset, slope
                )

    def test_group_ids_read_only(self, partition):
        view = partition.group_ids(0)
        with pytest.raises(ValueError):
            view[0] = 5

    def test_cached_instance_shared(self, paper_rect):
        assert partition_for(paper_rect) is partition_for(paper_rect)


class TestMembersMask:
    def test_single_group(self, paper_rect, partition):
        for slope in (0, 3):
            mask = partition.members_mask(slope, [2])
            members = set(paper_rect.group_members(2, slope))
            assert set(np.flatnonzero(mask)) == members

    def test_multiple_groups_union(self, paper_rect, partition):
        mask = partition.members_mask(1, [0, 4, 6])
        expected = set()
        for g in (0, 4, 6):
            expected |= set(paper_rect.group_members(g, 1))
        assert set(np.flatnonzero(mask)) == expected

    def test_empty_groups(self, partition):
        assert partition.members_mask(0, []).sum() == 0


class TestSeparation:
    def test_separates_matches_group_ids(self, partition):
        rng = np.random.default_rng(3)
        for _ in range(50):
            offsets = rng.choice(32, size=4, replace=False)
            for slope in range(7):
                ids = [partition.group_of(int(o), slope) for o in offsets]
                assert partition.separates(slope, offsets) == (
                    len(set(ids)) == len(ids)
                )

    def test_find_separating_slope_walks_from_start(self, partition):
        # a single fault is separated by whatever the current slope is
        assert partition.find_separating_slope([5], start=3) == (3, 1)

    def test_find_separating_slope_skips_colliding(self, paper_rect, partition):
        # pick two offsets colliding on slope 0 (same row)
        o1, o2 = paper_rect.group_members(0, 0)[:2]
        slope, trials = partition.find_separating_slope([o1, o2], start=0)
        assert slope == 1 and trials == 2  # slope 0 collides, slope 1 works

    def test_find_separating_slope_exhausted(self):
        # 3x3 square, 9 bits: any 4 faults in general position can exhaust
        # B=3 slopes only if every slope has a collision; force it with a
        # full column + more
        rect = rectangle_for(9, 3)
        partition = partition_for(rect)
        # four faults, C(4,2)=6 pairs >= 3 slopes: choose corners colliding everywhere
        result = partition.find_separating_slope([0, 1, 3, 4], start=0)
        assert result is None  # 2x2 sub-square poisons all 3 slopes

    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_separating_slope_really_separates(self, data):
        rect = rectangle_for(512, 31)
        partition = partition_for(rect)
        count = data.draw(st.integers(min_value=2, max_value=7))
        offsets = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=511),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        start = data.draw(st.integers(min_value=0, max_value=30))
        found = partition.find_separating_slope(offsets, start=start)
        assert found is not None  # 7 faults within B=31's hard guarantee... (C(7,2)+1=22<=31)
        slope, trials = found
        assert partition.separates(slope, offsets)
        assert 1 <= trials <= 31


class TestGroupsHit:
    def test_groups_hit(self, paper_rect, partition):
        offsets = [0, 1, 2]
        hit = partition.groups_hit(0, offsets)
        assert hit == [0]  # all on the bottom row under slope 0
        hit1 = partition.groups_hit(1, offsets)
        assert len(hit1) == 3  # a row is spread across groups under slope 1

    def test_groups_hit_empty(self, partition):
        assert partition.groups_hit(0, []) == []
