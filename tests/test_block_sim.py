"""Tests for the block-level Monte Carlo (Figures 8 and 10)."""

import numpy as np
import pytest

from repro.sim.block_sim import (
    block_lifetime,
    block_lifetime_study,
    failure_curve,
    faults_at_death,
)
from repro.sim.rng import rng_for
from repro.sim.roster import (
    aegis_rw_p_spec,
    aegis_rw_spec,
    aegis_spec,
    ecp_spec,
    safer_spec,
)


class TestFaultsAtDeath:
    def test_ecp_exact(self, rng):
        # ECP dies at exactly pointers + 1 faults, always
        for _ in range(10):
            assert faults_at_death(ecp_spec(4, 512), rng) == 5

    def test_aegis_beyond_hard_ftc(self, rng):
        # soft FTC strictly above hard FTC almost surely
        spec = aegis_spec(9, 61, 512)
        deaths = [faults_at_death(spec, rng) for _ in range(20)]
        assert min(deaths) > 11  # hard FTC is guaranteed
        assert np.mean(deaths) > 15  # and soft tolerance goes well beyond


class TestFailureCurve:
    def test_zero_below_hard_ftc(self):
        curve = failure_curve(aegis_spec(17, 31, 512), trials=100, max_faults=30, seed=5)
        for f in range(1, 9):  # hard FTC of 17x31 is 8
            assert curve.probability_at(f) == 0.0

    def test_monotone_and_bounded(self):
        curve = failure_curve(safer_spec(32, 512), trials=150, max_faults=30, seed=5)
        probs = list(curve.probabilities)
        assert all(0 <= p <= 1 for p in probs)
        assert probs == sorted(probs)

    def test_ecp_vertical_rise(self):
        curve = failure_curve(ecp_spec(6, 512), trials=100, max_faults=10, seed=5)
        assert curve.probability_at(6) == 0.0
        assert curve.probability_at(7) == 1.0

    def test_probability_at_boundaries(self):
        curve = failure_curve(ecp_spec(2, 512), trials=50, max_faults=5, seed=5)
        assert curve.probability_at(0) == 0.0
        assert curve.probability_at(99) == curve.probabilities[-1]

    def test_aegis_beats_safer_at_same_fault_count(self):
        """The Figure 8 headline: Aegis 9x61 (67 bits) has lower failure
        probability than SAFER64 (91 bits) in the transition region."""
        aegis = failure_curve(aegis_spec(9, 61, 512), trials=300, max_faults=24, seed=6)
        safer = failure_curve(safer_spec(64, 512), trials=300, max_faults=24, seed=6)
        for f in (12, 16, 20):
            assert aegis.probability_at(f) <= safer.probability_at(f)


class TestWearAcceleration:
    def test_inversion_wear_shortens_block_lifetime(self):
        spec = aegis_spec(9, 61, 512)
        with_wear = np.mean([
            block_lifetime(spec, rng_for(7, t), inversion_wear_rate=0.5)[0]
            for t in range(30)
        ])
        without = np.mean([
            block_lifetime(spec, rng_for(7, t), inversion_wear_rate=0.0)[0]
            for t in range(30)
        ])
        assert with_wear < without

    def test_cache_scheme_immune_to_wear_knob(self):
        # Aegis-rw performs single-pass writes: the knob must not matter
        spec = aegis_rw_spec(9, 61, 512, samples=16)
        a = block_lifetime(spec, rng_for(8, 0), inversion_wear_rate=0.5)
        b = block_lifetime(spec, rng_for(8, 0), inversion_wear_rate=0.0)
        assert a == b


class TestBlockLifetime:
    def test_lifetime_positive_and_fault_count_sane(self):
        lifetime, faults = block_lifetime(
            aegis_spec(9, 61, 512), rng_for(1, 0)
        )
        assert lifetime > 0
        assert faults > 11

    def test_study_aggregates(self):
        study = block_lifetime_study(ecp_spec(4, 512), trials=20, seed=2)
        assert study.faults.mean == pytest.approx(5.0)  # ECP4 dies at 5 exactly
        assert study.lifetime.mean > 0

    def test_rw_p_plateau_matches_rw(self):
        """Figure 10's plateau: with a generous pointer budget, Aegis-rw-p's
        block lifetime approaches Aegis-rw's."""
        rw = block_lifetime_study(aegis_rw_spec(17, 31, 512), trials=30, seed=3)
        rwp_large = block_lifetime_study(
            aegis_rw_p_spec(17, 31, 15, 512), trials=30, seed=3
        )
        rwp_small = block_lifetime_study(
            aegis_rw_p_spec(17, 31, 1, 512), trials=30, seed=3
        )
        assert rwp_small.lifetime.mean < rwp_large.lifetime.mean
        assert rwp_large.lifetime.mean == pytest.approx(rw.lifetime.mean, rel=0.1)
