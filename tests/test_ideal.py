"""Tests for the no-protection and perfect baselines."""

import numpy as np
import pytest

from repro.errors import UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.ideal import NoProtectionScheme, PerfectScheme
from tests.conftest import random_data


class TestNoProtection:
    def test_zero_overhead(self):
        scheme = NoProtectionScheme(CellArray(512))
        assert scheme.overhead_bits == 0
        assert scheme.hard_ftc == 0

    def test_faultless_roundtrip(self, rng):
        scheme = NoProtectionScheme(CellArray(512))
        data = random_data(rng, 512)
        scheme.write(data)
        assert np.array_equal(scheme.read(), data)

    def test_stuck_wrong_is_fatal(self):
        cells = CellArray(512)
        cells.inject_fault(5, stuck_value=1)
        scheme = NoProtectionScheme(cells)
        with pytest.raises(UncorrectableError):
            scheme.write(np.zeros(512, dtype=np.uint8))
        assert scheme.retired

    def test_stuck_right_survives_until_it_bites(self):
        cells = CellArray(512)
        cells.inject_fault(5, stuck_value=0)
        scheme = NoProtectionScheme(cells)
        scheme.write(np.zeros(512, dtype=np.uint8))  # fine: stuck right
        with pytest.raises(UncorrectableError):
            scheme.write(np.ones(512, dtype=np.uint8))


class TestPerfect:
    def test_survives_anything(self, rng):
        cells = CellArray(128)
        for offset in range(0, 128, 4):
            cells.inject_fault(offset, stuck_value=int(rng.integers(0, 2)))
        scheme = PerfectScheme(cells)
        for _ in range(10):
            data = random_data(rng, 128)
            scheme.write(data)
            assert np.array_equal(scheme.read(), data)
