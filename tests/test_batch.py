"""Tests for the vectorised batch engine, cross-validated against the
general per-page engine (with wear amplification off, which the batch
engine does not model)."""

import numpy as np
import pytest

from repro.core.formations import formation
from repro.errors import ConfigurationError
from repro.sim.batch import (
    _fault_positions,
    _first_death_times,
    _pext_table,
    batch_aegis_study,
    batch_ecp_study,
    batch_safer_study,
)
from repro.sim.page_sim import run_page_study
from repro.sim.roster import aegis_spec, ecp_spec, safer_spec


class TestOrderStatistics:
    def test_times_ascending(self, rng):
        times = _first_death_times(
            200, 512, 20, rng, mean_lifetime=1e8, cov=0.25, write_probability=0.5
        )
        assert np.all(np.diff(times, axis=1) >= 0)

    def test_first_death_matches_direct_sampling(self, rng):
        """The order-statistics shortcut must match brute-force sampling of
        512 endurances per block."""
        times = _first_death_times(
            4000, 512, 4, rng, mean_lifetime=1e8, cov=0.25, write_probability=0.5
        )
        direct = np.sort(
            np.maximum(rng.normal(1e8, 0.25e8, size=(4000, 512)), 1.0), axis=1
        )[:, :4] / 0.5
        for k in range(4):
            a, b = times[:, k], direct[:, k]
            assert a.mean() == pytest.approx(b.mean(), rel=0.03)
            assert a.std() == pytest.approx(b.std(), rel=0.12)

    def test_max_faults_bounded(self, rng):
        with pytest.raises(ConfigurationError):
            _first_death_times(
                10, 64, 64, rng, mean_lifetime=1e8, cov=0.25, write_probability=0.5
            )


class TestFaultPositions:
    def test_distinct_within_block(self, rng):
        positions = _fault_positions(500, 512, 30, rng)
        for row in positions:
            assert len(set(row.tolist())) == 30

    def test_uniform_coverage(self, rng):
        positions = _fault_positions(2000, 64, 8, rng)
        counts = np.bincount(positions.ravel(), minlength=64)
        assert counts.min() > 0.6 * counts.mean()


class TestCrossValidation:
    def test_ecp_matches_general_engine(self):
        batch = batch_ecp_study(4, 512, n_pages=512, seed=11)
        general = run_page_study(
            ecp_spec(4, 512), n_pages=32, seed=11, inversion_wear_rate=0.0
        )
        assert batch.faults_per_page.mean == pytest.approx(
            general.faults.mean, rel=0.08
        )
        assert batch.mean_lifetime == pytest.approx(general.lifetime.mean, rel=0.05)

    def test_aegis_matches_general_engine(self):
        form = formation(17, 31, 512)
        batch = batch_aegis_study(form, n_pages=256, max_faults=40, seed=12)
        general = run_page_study(
            aegis_spec(17, 31, 512), n_pages=32, seed=12, inversion_wear_rate=0.0
        )
        assert batch.faults_per_page.mean == pytest.approx(
            general.faults.mean, rel=0.10
        )
        assert batch.mean_lifetime == pytest.approx(general.lifetime.mean, rel=0.05)

    def test_safer_matches_general_engine(self):
        batch = batch_safer_study(64, 512, n_pages=256, max_faults=30, seed=12)
        general = run_page_study(
            safer_spec(64, 512), n_pages=24, seed=12, inversion_wear_rate=0.0
        )
        assert batch.faults_per_page.mean == pytest.approx(
            general.faults.mean, rel=0.12
        )
        assert batch.mean_lifetime == pytest.approx(general.lifetime.mean, rel=0.05)

    def test_pext_table(self):
        table = _pext_table(4)
        # mask 0b1010 extracts bits 1 and 3 of the offset, packed ascending
        assert table[0b1010, 0b1010] == 0b11
        assert table[0b1010, 0b1000] == 0b10
        assert table[0b0000, 7] == 0
        assert table[0b1111, 9] == 9

    def test_survivor_guard(self):
        with pytest.raises(ConfigurationError):
            batch_aegis_study(
                formation(9, 61, 512), n_pages=16, max_faults=12, seed=1
            )

    def test_b_cap(self):
        # 8x71 is a valid formation but exceeds the uint64 bitmask width
        with pytest.raises(ConfigurationError):
            batch_aegis_study(formation(8, 71, 512), n_pages=4, seed=1)


class TestFullScale:
    def test_paper_scale_runs(self):
        """The 8 MB population (2048 pages) at reduced sampling depth."""
        result = batch_ecp_study(6, 512, n_pages=2048, seed=5)
        assert result.n_pages == 2048
        assert result.page_lifetimes.shape == (2048,)
        # tight CI at full scale
        assert result.faults_per_page.half_width < 0.02 * result.faults_per_page.mean
