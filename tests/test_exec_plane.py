"""Tests for the unified execution plane (`repro/sim/context.py`).

Two contracts anchor this suite:

* **Worker-count invariance for the migrated extension sims.**  The
  pairing, PAYG and FREE-p remap studies now fan pages over the same
  :class:`~repro.sim.parallel.StudyRunner` as ``page_sim``; their rendered
  experiment tables must be byte-identical for workers 1, 2 and 4
  (mirroring ``tests/test_parallel.py`` for the page studies).
* **Field additions are two edits.**  A new ExecContext field must reach
  every driver by editing only the context dataclass and the CLI parser —
  demonstrated here by extending the dataclass and watching ``from_args``,
  ``with_options``, ``cache_key`` and the dispatcher pick it up with no
  driver changes.
"""

import argparse
import pickle
from dataclasses import dataclass

import pytest

from repro.errors import ConfigurationError
from repro.experiments import clear_study_cache, run_experiment
from repro.experiments.base import ACCEPTED_OPTIONS, REGISTRY, dispatch
from repro.pairing.sim import pairing_study
from repro.payg.sim import payg_page_study
from repro.remap.sim import remap_page_study
from repro.sim.context import ExecContext
from repro.sim.parallel import StudyRunner
from repro.sim.roster import aegis_spec, ecp_spec
from repro.core.formations import formation


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_study_cache()
    yield
    clear_study_cache()


class TestExecContext:
    def test_defaults_are_serial_auto(self):
        ctx = ExecContext()
        assert (ctx.seed, ctx.workers, ctx.engine) == (2013, 1, "auto")
        assert not (ctx.trace or ctx.metrics or ctx.profile)

    def test_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError, match="engine"):
            ExecContext(engine="turbo")

    def test_rejects_negative_workers(self):
        with pytest.raises(ConfigurationError, match="workers"):
            ExecContext(workers=-1)

    def test_with_options_unknown_field_raises(self):
        with pytest.raises(ConfigurationError, match="worker"):
            ExecContext().with_options(worker=4)

    def test_with_options_replaces(self):
        ctx = ExecContext().with_options(seed=7, engine="scalar")
        assert (ctx.seed, ctx.engine) == (7, "scalar")

    def test_cache_key_covers_every_field(self):
        names = [name for name, _ in ExecContext().cache_key]
        assert names == [
            "seed",
            "workers",
            "engine",
            "fault_model",
            "trace",
            "metrics",
            "profile",
        ]
        assert ExecContext(seed=1).cache_key != ExecContext(seed=2).cache_key
        # workers/engine never change numbers but must not alias caches
        assert ExecContext(workers=1).cache_key != ExecContext(workers=4).cache_key
        assert (
            ExecContext(engine="vector").cache_key
            != ExecContext(engine="scalar").cache_key
        )

    def test_picklable(self):
        ctx = ExecContext(seed=5, workers=3, engine="scalar")
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_describe(self):
        assert ExecContext(seed=5, workers=None).describe() == (
            "seed=5 workers=all-cores engine=auto"
        )

    def test_from_args_maps_by_name(self):
        args = argparse.Namespace(
            seed=11, workers=2, engine="scalar", trace="/tmp/t.jsonl",
            metrics=None, profile=True, pages=64,
        )
        ctx = ExecContext.from_args(args)
        assert (ctx.seed, ctx.workers, ctx.engine) == (11, 2, "scalar")
        # path-valued observability flags coerce to booleans
        assert ctx.trace is True and ctx.metrics is False and ctx.profile is True

    def test_from_args_missing_attributes_keep_defaults(self):
        # the report subcommand has no --trace/--metrics/--profile flags
        ctx = ExecContext.from_args(argparse.Namespace(seed=3))
        assert ctx == ExecContext(seed=3)

    def test_from_args_overrides_win(self):
        args = argparse.Namespace(seed=3, workers=8)
        assert ExecContext.from_args(args, workers=1).workers == 1


#: (experiment id, study callable, scale kwargs) for the migrated sims
MIGRATED_STUDIES = [
    (
        "pairing",
        lambda ctx: pairing_study(
            ecp_spec(2, 512), n_pages=6, blocks_per_page=4, ctx=ctx
        ),
    ),
    (
        "payg",
        lambda ctx: payg_page_study(
            formation(17, 31, 512),
            pool_entries=4,
            blocks_per_page=8,
            n_pages=6,
            ctx=ctx,
        ),
    ),
    (
        "remap",
        lambda ctx: remap_page_study(
            aegis_spec(17, 31, 512), spares=2, blocks_per_page=4, n_pages=6, ctx=ctx
        ),
    ),
]


class TestWorkerLadderDeterminism:
    """workers=1, 2 and 4 must be bit-identical for every migrated sim."""

    @pytest.mark.parametrize(
        "name,study", MIGRATED_STUDIES, ids=[m[0] for m in MIGRATED_STUDIES]
    )
    def test_study_invariant_across_worker_counts(self, name, study):
        results = [study(ExecContext(seed=23, workers=w)) for w in (1, 2, 4)]
        assert results[0] == results[1] == results[2]

    @pytest.mark.parametrize(
        "experiment_id,options",
        [
            ("ext-pairing", {"n_pages": 6}),
            ("ext-payg", {"n_pages": 4, "pool_fractions": (0.25, 1.0)}),
            ("ext-freep", {"n_pages": 4, "spare_counts": (0, 2)}),
        ],
    )
    def test_rendered_tables_identical(self, experiment_id, options):
        rendered = []
        for workers in (1, 2, 4):
            clear_study_cache()
            result = run_experiment(
                experiment_id,
                ctx=ExecContext(seed=31, workers=workers),
                **options,
            )
            rendered.append(result.render())
        assert rendered[0] == rendered[1] == rendered[2]

    def test_engine_flag_transparent_for_scalar_only_sims(self):
        # the migrated sims have no batch kernels: any engine choice must
        # fall back to the scalar path without changing a single number
        base = pairing_study(ecp_spec(2, 512), n_pages=4, blocks_per_page=4,
                             ctx=ExecContext(seed=9))
        for engine in ("vector", "scalar"):
            other = pairing_study(
                ecp_spec(2, 512), n_pages=4, blocks_per_page=4,
                ctx=ExecContext(seed=9, engine=engine),
            )
            assert other == base

    def test_invalid_engine_rejected_before_simulation(self):
        with pytest.raises(ConfigurationError, match="engine"):
            ExecContext(engine="nope")


@dataclass(frozen=True)
class ExtendedContext(ExecContext):
    """ExecContext plus one hypothetical new execution flag.

    Stands in for the 'add a new field' exercise: everything below passes
    with *no* changes to any driver, dispatcher, or study runner —
    the two real edits would be the field (here) and a CLI flag.
    """

    checkpoint: bool = False


class TestFieldAdditionIsTwoEdits:
    def test_from_args_picks_up_new_field_automatically(self):
        args = argparse.Namespace(seed=4, checkpoint="/tmp/ck")
        ctx = ExtendedContext.from_args(args)
        assert ctx.seed == 4 and ctx.checkpoint is True

    def test_with_options_and_cache_key_include_new_field(self):
        ctx = ExtendedContext().with_options(checkpoint=True)
        assert ctx.checkpoint is True
        assert ("checkpoint", True) in ctx.cache_key

    def test_dispatch_threads_extended_context_to_drivers_unchanged(self):
        from repro.experiments.base import ExperimentResult, register

        @register("zz-extended-probe")
        def runner(ctx, *, depth=1):
            return ExperimentResult(
                "zz-extended-probe", "t", ("checkpoint",),
                ((getattr(ctx, "checkpoint", None),),),
            )

        try:
            result = dispatch(
                "zz-extended-probe", ctx=ExtendedContext(checkpoint=True)
            )
            assert result.rows == ((True,),)
        finally:
            del REGISTRY["zz-extended-probe"]
            del ACCEPTED_OPTIONS["zz-extended-probe"]

    def test_study_runner_accepts_extended_context(self):
        runner = StudyRunner("probe", ExtendedContext(workers=1, checkpoint=True))
        with runner:
            assert runner.workers == 1


class TestDriversDeclareNoExecKnobs:
    """No driver re-declares what ExecContext owns — the refactor's point."""

    def test_no_driver_accepts_exec_fields_as_options(self):
        for experiment_id, accepted in ACCEPTED_OPTIONS.items():
            assert not accepted & {"seed", "workers", "engine"}, experiment_id

    def test_every_registered_driver_was_vetted(self):
        # registration is the enforcement point; every id present in the
        # registry must have passed it
        assert set(ACCEPTED_OPTIONS) == set(REGISTRY)

    def test_typo_option_fails_loudly_on_real_driver(self):
        with pytest.raises(ConfigurationError, match="worker"):
            run_experiment("ext-pairing", worker=4)
