"""Tests for the PAYG extension (device level and Monte Carlo)."""

import numpy as np
import pytest

from repro.core.aegis import AegisScheme
from repro.core.formations import formation
from repro.errors import ConfigurationError, UncorrectableError
from repro.pcm.cell import CellArray
from repro.payg.payg import GecPool, PaygBlock, payg_overhead_bits
from repro.payg.sim import payg_page_study
from tests.conftest import random_data


def gec_factory(cells):
    return AegisScheme(cells, formation(17, 31, 512))


class TestGecPool:
    def test_allocation(self):
        pool = GecPool(2)
        assert pool.try_allocate()
        assert pool.try_allocate()
        assert not pool.try_allocate()
        assert pool.available == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GecPool(-1)


class TestPaygBlock:
    def test_lec_handles_first_fault(self, rng):
        cells = CellArray(512)
        cells.inject_fault(5, stuck_value=1)
        block = PaygBlock(cells, GecPool(1), gec_factory)
        data = np.zeros(512, dtype=np.uint8)
        block.write(data)
        assert np.array_equal(block.read(), data)
        assert not block.upgraded

    def test_second_fault_triggers_upgrade(self, rng):
        cells = CellArray(512)
        cells.inject_fault(5, stuck_value=1)
        cells.inject_fault(9, stuck_value=1)
        pool = GecPool(1)
        block = PaygBlock(cells, pool, gec_factory)
        data = np.zeros(512, dtype=np.uint8)
        block.write(data)
        assert np.array_equal(block.read(), data)
        assert block.upgraded
        assert pool.available == 0
        assert "GEC" in block.name

    def test_exhausted_pool_kills(self):
        cells = CellArray(512)
        cells.inject_fault(5, stuck_value=1)
        cells.inject_fault(9, stuck_value=1)
        block = PaygBlock(cells, GecPool(0), gec_factory)
        with pytest.raises(UncorrectableError):
            block.write(np.zeros(512, dtype=np.uint8))
        assert block.retired

    def test_upgraded_block_keeps_serving(self, rng):
        cells = CellArray(512)
        for offset in (5, 9, 100, 200, 300):
            cells.inject_fault(offset, stuck_value=int(rng.integers(0, 2)))
        block = PaygBlock(cells, GecPool(1), gec_factory)
        for _ in range(10):
            payload = random_data(rng, 512)
            block.write(payload)
            assert np.array_equal(block.read(), payload)

    def test_gec_failure_is_final(self, rng):
        # saturate even the GEC: two full columns of a 23x23 grid
        cells = CellArray(512)
        for row in range(23):
            for col in (0, 1):
                offset = col + 23 * row
                if offset < 512:
                    cells.inject_fault(offset, stuck_value=1)
        block = PaygBlock(
            cells, GecPool(1), lambda c: AegisScheme(c, formation(23, 23, 512))
        )
        with pytest.raises(UncorrectableError):
            block.write(np.zeros(512, dtype=np.uint8))


class TestOverheadModel:
    def test_flat_pool_costs_more_than_lec(self):
        lec_only = payg_overhead_bits(64, 512, 0, 36)
        half_pool = payg_overhead_bits(64, 512, 32, 36)
        assert lec_only == 11  # ECP-1 bits
        assert half_pool > lec_only

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            payg_overhead_bits(0, 512, 1, 36)


class TestPaygStudy:
    def test_capacity_grows_with_pool(self):
        form = formation(17, 31, 512)
        small = payg_page_study(form, pool_entries=2, blocks_per_page=16,
                                n_pages=8, seed=5)
        large = payg_page_study(form, pool_entries=16, blocks_per_page=16,
                                n_pages=8, seed=5)
        assert large.faults.mean > small.faults.mean
        assert small.pool_exhaustion_deaths >= large.pool_exhaustion_deaths
        assert large.overhead_bits_per_block > small.overhead_bits_per_block

    def test_allocations_bounded_by_pool(self):
        form = formation(17, 31, 512)
        result = payg_page_study(form, pool_entries=4, blocks_per_page=16,
                                 n_pages=6, seed=5)
        assert result.gec_allocations.mean <= 4
