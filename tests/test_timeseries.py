"""Tests for the deterministic time-series recorder (:mod:`repro.obs.timeseries`).

The recorder's contract mirrors the registry's: op-clock buckets (never
wall time), bounded storage with counted eviction, commutative shard
merge, and snapshots that are bit-identical across worker counts and
drain engines.
"""

import itertools
import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, TimeSeriesRecorder, read_series_jsonl
from repro.pcm.lifetime import NormalLifetime
from repro.service import run_load
from repro.sim.roster import aegis_spec


def _recorder(width=10, capacity=8):
    registry = MetricsRegistry()
    return registry, TimeSeriesRecorder(
        registry, bucket_width=width, capacity=capacity
    )


class TestSampling:
    def test_counter_deltas_land_in_op_clock_buckets(self):
        registry, recorder = _recorder()
        registry.inc("writes_total", 3, outcome="ok")
        recorder.sample(5)          # bucket 0
        registry.inc("writes_total", 4, outcome="ok")
        recorder.sample(25)         # bucket 2 (bucket 1 stays empty)
        assert recorder.start_bucket == 0
        assert recorder.bucket_count == 3
        assert recorder.counter_view("writes_total").tolist() == [3, 0, 4]
        assert recorder.counter_view("writes_total", outcome="ok").tolist() == [3, 0, 4]
        assert recorder.counter_view("writes_total", outcome="lost").tolist() == [0, 0, 0]

    def test_label_subset_selector_sums_matching_series(self):
        registry, recorder = _recorder()
        registry.inc("writes_total", 2, scheme="a", outcome="ok")
        registry.inc("writes_total", 5, scheme="b", outcome="ok")
        recorder.sample(0)
        assert recorder.counter_view("writes_total").tolist() == [7]
        assert recorder.counter_view("writes_total", scheme="a").tolist() == [2]

    def test_gauges_record_last_value_per_bucket(self):
        registry, recorder = _recorder()
        registry.set_gauge("capacity_retention", 1.0, scope="cluster")
        recorder.sample(1)
        registry.set_gauge("capacity_retention", 0.5, scope="cluster")
        recorder.sample(8)          # same bucket: last value wins
        values = recorder.gauge_view("capacity_retention", scope="cluster")
        assert values.tolist() == [0.5]

    def test_histogram_deltas_per_bucket(self):
        registry, recorder = _recorder()
        registry.observe("stage_cost", 5, edges=(8, 64))
        registry.observe("stage_cost", 100, edges=(8, 64))
        recorder.sample(3)
        registry.observe("stage_cost", 7, edges=(8, 64))
        recorder.sample(13)
        view = recorder.histogram_view("stage_cost")
        assert view is not None
        edges, counts, totals, sums = view
        assert edges == (8, 64)
        assert counts.tolist() == [[1, 0, 1], [1, 0, 0]]
        assert totals.tolist() == [2, 1]
        assert sums.tolist() == [105.0, 7.0]
        assert recorder.histogram_view("missing") is None

    def test_rate_view_divides_by_bucket_width(self):
        registry, recorder = _recorder(width=10)
        registry.inc("reads_total", 5)
        recorder.sample(0)
        assert recorder.rate_view("reads_total").tolist() == [0.5]

    def test_clock_must_be_monotonic(self):
        registry, recorder = _recorder()
        recorder.sample(50)
        with pytest.raises(ConfigurationError):
            recorder.sample(49)

    def test_merge_only_recorder_rejects_sample(self):
        recorder = TimeSeriesRecorder(None, bucket_width=10)
        with pytest.raises(ConfigurationError):
            recorder.sample(0)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            TimeSeriesRecorder(MetricsRegistry(), bucket_width=0)
        with pytest.raises(ConfigurationError):
            TimeSeriesRecorder(MetricsRegistry(), bucket_width=4, capacity=0)


class TestEviction:
    def test_old_buckets_evict_and_are_counted(self):
        registry, recorder = _recorder(width=10, capacity=4)
        for step in range(8):
            registry.inc("ops_total")
            recorder.sample(step * 10)
        assert recorder.bucket_count == 4
        assert recorder.start_bucket == 4
        assert recorder.dropped == 4
        assert recorder.counter_view("ops_total").tolist() == [1, 1, 1, 1]
        assert recorder.bucket_clocks() == [50, 60, 70, 80]

    def test_far_jump_clears_whole_window(self):
        registry, recorder = _recorder(width=10, capacity=4)
        registry.inc("ops_total")
        recorder.sample(0)
        registry.inc("ops_total")
        recorder.sample(1000)       # bucket 100: the old window is gone
        assert recorder.start_bucket == 97
        assert recorder.counter_view("ops_total").tolist() == [0, 0, 0, 1]
        assert recorder.dropped == 1


class TestMerge:
    def _shard(self, base_clock, value):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, bucket_width=10, capacity=8)
        registry.inc("writes_total", value, outcome="ok")
        registry.set_gauge("spares_free", float(value), shard=str(value))
        registry.observe("stage_cost", value, edges=(8, 64))
        recorder.sample(base_clock)
        return recorder

    def test_merge_is_commutative_over_shard_order(self):
        snapshots = []
        for order in itertools.permutations(range(3)):
            shards = [self._shard(17 * (i + 1), i + 1) for i in range(3)]
            merged = TimeSeriesRecorder(None, bucket_width=10, capacity=8)
            for index in order:
                merged.merge(shards[index])
            snapshots.append(json.dumps(merged.snapshot(), sort_keys=True))
        assert len(set(snapshots)) == 1

    def test_merge_unions_the_bucket_window(self):
        merged = TimeSeriesRecorder(None, bucket_width=10, capacity=8)
        merged.merge(self._shard(5, 2))     # bucket 0
        merged.merge(self._shard(35, 3))    # bucket 3
        assert merged.start_bucket == 0
        assert merged.bucket_count == 4
        assert merged.counter_view("writes_total").tolist() == [2, 0, 0, 3]
        assert merged.samples == 2

    def test_merge_rejects_mismatched_geometry(self):
        a = TimeSeriesRecorder(None, bucket_width=10)
        with pytest.raises(ConfigurationError):
            a.merge(TimeSeriesRecorder(None, bucket_width=20))
        with pytest.raises(ConfigurationError):
            a.merge(TimeSeriesRecorder(None, bucket_width=10, capacity=4))


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        registry, recorder = _recorder()
        registry.inc("writes_total", 3, outcome="ok")
        registry.set_gauge("spares_free", 7.0)
        registry.observe("stage_cost", 12, edges=(8, 64))
        recorder.sample(5)
        path = tmp_path / "series.jsonl"
        lines = recorder.write_jsonl(str(path))
        assert lines == 1 + 3  # meta + one record per series
        data = read_series_jsonl(str(path))
        assert data["meta"]["bucket_width"] == 10
        assert data["meta"]["buckets"] == 1
        by_series = {record["series"]: record for record in data["series"]}
        assert by_series['writes_total{outcome="ok"}']["values"] == [3]
        assert by_series["spares_free"]["kind"] == "gauge"
        assert by_series["stage_cost"]["totals"] == [1]
        assert data["slos"] == [] and data["alerts"] == []

    def test_csv_export_rows(self, tmp_path):
        registry, recorder = _recorder()
        registry.inc("writes_total", 2)
        registry.observe("stage_cost", 12, edges=(8,))
        recorder.sample(5)
        path = tmp_path / "series.csv"
        rows = recorder.write_csv(str(path))
        text = path.read_text().splitlines()
        assert text[0] == "kind,series,bucket,clock,value"
        assert rows == len(text) - 1
        assert any("stage_cost_count" in line for line in text)

    def test_last_bucket_snapshot(self):
        registry, recorder = _recorder()
        assert recorder.last_bucket_snapshot()["bucket"] is None
        registry.inc("writes_total", 4)
        recorder.sample(25)
        frame = recorder.last_bucket_snapshot()
        assert frame["bucket"] == 2
        assert frame["clock"] == 30
        assert frame["counters"] == {"writes_total": 4}


class TestLoadDeterminism:
    def test_series_identical_across_workers_and_engines(self):
        snapshots = {}
        for workers, engine in [(1, "vector"), (2, "scalar"), (2, "vector")]:
            report = run_load(
                aegis_spec(9, 61, 512),
                ops=400,
                seed=11,
                shards=4,
                workers=workers,
                n_addresses=16,
                spares=4,
                workload="zipf",
                lifetime_model=NormalLifetime(mean_lifetime=50.0),
                engine=engine,
                series_bucket=16,
            )
            series = report.snapshot["timeseries"]
            snapshots[(workers, engine)] = json.dumps(series, sort_keys=True)
            assert series["samples"] > 0
        assert len(set(snapshots.values())) == 1

    def test_series_export_requires_recorder(self, tmp_path):
        report = run_load(
            aegis_spec(9, 61, 512),
            ops=50,
            seed=11,
            shards=1,
            workers=1,
            n_addresses=16,
            spares=4,
        )
        with pytest.raises(ConfigurationError):
            report.write_series_jsonl(str(tmp_path / "series.jsonl"))

    def test_negative_series_bucket_rejected(self):
        with pytest.raises(ConfigurationError):
            run_load(
                aegis_spec(9, 61, 512),
                ops=10,
                seed=1,
                shards=1,
                workers=1,
                n_addresses=16,
                spares=4,
                series_bucket=-1,
            )
