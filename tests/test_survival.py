"""Tests for the device survival-curve construction."""

import numpy as np
import pytest

from repro.sim.page_sim import run_page_study
from repro.sim.roster import ecp_spec
from repro.sim.survival import (
    survival_curve_from_lifetimes,
    survival_curve_from_study,
)


class TestConstruction:
    def test_two_page_example_by_hand(self):
        # pages die at ages 10 and 30; with both alive, age advances at
        # 1 per 2 device writes: first death at G=20, then the survivor
        # ages alone for 20 more: G=40
        curve = survival_curve_from_lifetimes([10.0, 30.0])
        assert curve.death_writes == (20.0, 40.0)
        assert curve.survival_after == (0.5, 0.0)

    def test_equal_lifetimes_die_together(self):
        curve = survival_curve_from_lifetimes([5.0, 5.0, 5.0, 5.0])
        assert curve.death_writes == (20.0, 20.0, 20.0, 20.0)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            survival_curve_from_lifetimes([])


class TestQueries:
    def test_survival_at(self):
        curve = survival_curve_from_lifetimes([10.0, 30.0])
        assert curve.survival_at(0) == 1.0
        assert curve.survival_at(20.0) == 0.5
        assert curve.survival_at(39.9) == 0.5
        assert curve.survival_at(40.0) == 0.0

    def test_half_lifetime(self):
        curve = survival_curve_from_lifetimes([10.0, 20.0, 30.0, 40.0])
        # half the population = 2 pages dead
        assert curve.half_lifetime == curve.death_writes[1]

    def test_sample_grid(self):
        curve = survival_curve_from_lifetimes(np.linspace(10, 100, 10))
        points = curve.sample(5)
        assert len(points) == 5
        survivals = [s for _, s in points]
        assert survivals == sorted(survivals, reverse=True)
        assert survivals[0] == 1.0


class TestFromStudy:
    def test_carries_metadata(self):
        study = run_page_study(ecp_spec(2, 512), n_pages=4, seed=1)
        curve = survival_curve_from_study(study)
        assert curve.label == "ECP2"
        assert curve.overhead_bits == 21
        assert len(curve.death_writes) == 4
        # total device writes at last death >= sum property: each gap is
        # weighted by at least one live page
        assert curve.death_writes[-1] >= max(study.lifetimes())
