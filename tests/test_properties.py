"""Property-based tests of cross-module invariants (hypothesis).

These are the invariants the paper's correctness argument rests on,
checked on randomly generated formations, fault patterns, and data:

1. Theorem 2 on arbitrary valid rectangles (not just the paper's).
2. Round-trip correctness of every scheme within its hard FTC, for any
   fault placement, stuck values, and data.
3. The hard-FTC formulas never over-promise: the guarantee bound derived
   from the slope supply is achievable by construction.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.aegis import AegisScheme
from repro.core.aegis_rw import AegisRwScheme
from repro.core.aegis_rw_p import AegisRwPScheme
from repro.core.formations import aegis_hard_ftc, aegis_rw_hard_ftc, formation
from repro.core.geometry import rectangle_for
from repro.pcm.cell import CellArray
from repro.schemes.ecp import EcpScheme
from repro.schemes.rdis import RdisScheme
from repro.schemes.safer import SaferScheme
from repro.util.primes import primes_in_range

#: valid primes for small random rectangles
SMALL_PRIMES = primes_in_range(3, 24)


@st.composite
def rectangles(draw):
    b_size = draw(st.sampled_from(SMALL_PRIMES))
    a_size = draw(st.integers(min_value=1, max_value=b_size))
    max_bits = a_size * b_size
    min_bits = (a_size - 1) * b_size + 1
    n_bits = draw(st.integers(min_value=min_bits, max_value=max_bits))
    return rectangle_for(n_bits, b_size)


class TestTheorem2Property:
    @settings(max_examples=60, deadline=None)
    @given(rectangles(), st.data())
    def test_pair_collides_on_at_most_one_slope(self, rect, data):
        if rect.n_bits < 2:
            return
        o1 = data.draw(st.integers(0, rect.n_bits - 1))
        o2 = data.draw(st.integers(0, rect.n_bits - 1))
        if o1 == o2:
            return
        collisions = [
            k for k in range(rect.b_size)
            if rect.group_of(o1, k) == rect.group_of(o2, k)
        ]
        assert len(collisions) <= 1
        expected = rect.collision_slope(o1, o2)
        assert collisions == ([] if expected is None else [expected])


@st.composite
def fault_pattern(draw, n_bits, max_faults):
    count = draw(st.integers(min_value=0, max_value=max_faults))
    offsets = draw(
        st.lists(
            st.integers(0, n_bits - 1), min_size=count, max_size=count, unique=True
        )
    )
    stuck = draw(
        st.lists(st.integers(0, 1), min_size=count, max_size=count)
    )
    return list(zip(offsets, stuck))


def exercise(scheme, rng, writes=4):
    for _ in range(writes):
        data = rng.integers(0, 2, scheme.cells.n_bits, dtype=np.uint8)
        scheme.write(data)
        assert np.array_equal(scheme.read(), data)


COMMON_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestHardFtcRoundtrips:
    """Within hard FTC, every scheme must store arbitrary data for
    arbitrary fault placements and stuck values."""

    @COMMON_SETTINGS
    @given(fault_pattern(512, aegis_hard_ftc(31)), st.integers(0, 2**31))
    def test_aegis_17x31(self, faults, seed):
        cells = CellArray(512)
        for offset, stuck in faults:
            cells.inject_fault(offset, stuck_value=stuck)
        exercise(AegisScheme(cells, formation(17, 31, 512)),
                 np.random.default_rng(seed))

    @COMMON_SETTINGS
    @given(fault_pattern(512, aegis_rw_hard_ftc(31)), st.integers(0, 2**31))
    def test_aegis_rw_17x31(self, faults, seed):
        cells = CellArray(512)
        for offset, stuck in faults:
            cells.inject_fault(offset, stuck_value=stuck)
        exercise(AegisRwScheme(cells, formation(17, 31, 512)),
                 np.random.default_rng(seed))

    @COMMON_SETTINGS
    @given(fault_pattern(512, 11), st.integers(0, 2**31))
    def test_aegis_rw_p_17x31(self, faults, seed):
        # 5 pointers + B=31 slopes guarantee 11 faults (see test_aegis_rw_p)
        cells = CellArray(512)
        for offset, stuck in faults:
            cells.inject_fault(offset, stuck_value=stuck)
        exercise(AegisRwPScheme(cells, formation(17, 31, 512), pointers=5),
                 np.random.default_rng(seed))

    @COMMON_SETTINGS
    @given(fault_pattern(512, 6), st.integers(0, 2**31))
    def test_ecp6(self, faults, seed):
        cells = CellArray(512)
        for offset, stuck in faults:
            cells.inject_fault(offset, stuck_value=stuck)
        exercise(EcpScheme(cells, 6), np.random.default_rng(seed))

    @COMMON_SETTINGS
    @given(
        fault_pattern(512, 6),
        st.sampled_from(["incremental", "exhaustive"]),
        st.integers(0, 2**31),
    )
    def test_safer32(self, faults, policy, seed):
        cells = CellArray(512)
        for offset, stuck in faults:
            cells.inject_fault(offset, stuck_value=stuck)
        exercise(SaferScheme(cells, 32, policy=policy),
                 np.random.default_rng(seed))

    @COMMON_SETTINGS
    @given(fault_pattern(512, 3), st.integers(0, 2**31))
    def test_rdis3(self, faults, seed):
        cells = CellArray(512)
        for offset, stuck in faults:
            cells.inject_fault(offset, stuck_value=stuck)
        exercise(RdisScheme(cells), np.random.default_rng(seed))


class TestMoreHardFtcRoundtrips:
    @COMMON_SETTINGS
    @given(fault_pattern(512, 6), st.integers(0, 2**31))
    def test_safer32_cache(self, faults, seed):
        from repro.schemes.safer import SaferCacheScheme

        cells = CellArray(512)
        for offset, stuck in faults:
            cells.inject_fault(offset, stuck_value=stuck)
        exercise(SaferCacheScheme(cells, 32), np.random.default_rng(seed))

    @COMMON_SETTINGS
    @given(st.integers(0, 7), st.integers(0, 63), st.integers(0, 1),
           st.integers(0, 2**31))
    def test_hamming_one_fault_per_word(self, word, bit, stuck, seed):
        from repro.schemes.hamming import HammingScheme

        cells = CellArray(512)
        cells.inject_fault(word * 64 + bit, stuck_value=stuck)
        exercise(HammingScheme(cells), np.random.default_rng(seed))

    @COMMON_SETTINGS
    @given(fault_pattern(512, 8), st.integers(0, 2**31))
    def test_payg_block_with_gec(self, faults, seed):
        """A PAYG block with an available GEC slot inherits the GEC scheme's
        guarantee (Aegis 17x31: 8 faults)."""
        from repro.payg.payg import GecPool, PaygBlock

        cells = CellArray(512)
        for offset, stuck in faults:
            cells.inject_fault(offset, stuck_value=stuck)
        block = PaygBlock(
            cells,
            GecPool(1),
            lambda c: AegisScheme(c, formation(17, 31, 512)),
        )
        exercise(block, np.random.default_rng(seed))


class TestMetadataInvariants:
    """Structural invariants of controller state after arbitrary traffic."""

    @COMMON_SETTINGS
    @given(fault_pattern(512, 10), st.integers(0, 2**31))
    def test_aegis_state_wellformed(self, faults, seed):
        cells = CellArray(512)
        for offset, stuck in faults:
            cells.inject_fault(offset, stuck_value=stuck)
        scheme = AegisScheme(cells, formation(9, 61, 512))
        rng = np.random.default_rng(seed)
        for _ in range(4):
            scheme.write(rng.integers(0, 2, 512, dtype=np.uint8))
            assert 0 <= scheme.slope < 61
            assert set(np.unique(scheme.inversion)) <= {0, 1}
            # the inversion vector never flags more groups than exist
            assert scheme.inversion.sum() <= 61

    @COMMON_SETTINGS
    @given(fault_pattern(512, 11), st.integers(0, 2**31))
    def test_rw_p_pointer_budget_respected(self, faults, seed):
        cells = CellArray(512)
        for offset, stuck in faults:
            cells.inject_fault(offset, stuck_value=stuck)
        scheme = AegisRwPScheme(cells, formation(17, 31, 512), pointers=5)
        rng = np.random.default_rng(seed)
        for _ in range(4):
            scheme.write(rng.integers(0, 2, 512, dtype=np.uint8))
            assert len(scheme.pointed_groups) <= 5
            assert len(set(scheme.pointed_groups)) == len(scheme.pointed_groups)


class TestSlopeSupplyBound:
    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(primes_in_range(5, 80)))
    def test_hard_ftc_bounds(self, b_size):
        f = aegis_hard_ftc(b_size)
        assert f * (f - 1) // 2 + 1 <= b_size
        f_next = f + 1
        assert f_next * (f_next - 1) // 2 + 1 > b_size
        assert aegis_rw_hard_ftc(b_size) >= f
