"""The pluggable fault-model layer (repro.pcm.faults).

Three contracts:

* **Typed injection errors** — every illegal injection raises
  :class:`~repro.errors.FaultInjectionError` carrying the offending
  ``offset`` (and stays a ``ValueError`` for historical callers).
* **Engine/worker invariance** — under every fault model, the vector and
  scalar engines and every worker count produce bit-identical results,
  because model randomness is drawn before engine dispatch.
* **Golden hard-model regression** — the default ``hard`` model is
  byte-identical to the code before the fault-model layer existed; the
  digests below were captured from the pre-refactor tree.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, FaultInjectionError
from repro.pcm.cell import CellArray
from repro.pcm.faults import (
    FAULT_MODEL_CHOICES,
    HARD,
    DriftBurst,
    HardStuckAt,
    PartiallyStuck,
    fault_model_for,
)
from repro.pcm.lifetime import NormalLifetime, WearSkewLifetime
from repro.sim import roster
from repro.sim.block_sim import block_lifetime_study, failure_curve
from repro.sim.context import ExecContext
from repro.sim.page_sim import simulate_pages
from repro.service.loadgen import run_load


def _digest(obj) -> str:
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True, default=float).encode()
    ).hexdigest()


class TestResolution:
    def test_none_is_the_shared_hard_default(self):
        assert fault_model_for(None) is HARD
        assert fault_model_for("hard") is HARD

    def test_instances_pass_through(self):
        model = PartiallyStuck(partial_fraction=0.3)
        assert fault_model_for(model) is model

    def test_choices_resolve(self):
        for key in FAULT_MODEL_CHOICES:
            assert fault_model_for(key).key == key

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            fault_model_for("soft")

    def test_params_reach_the_constructor(self):
        model = fault_model_for("drift", burst_span=4, burst_probability=0.5)
        assert (model.burst_span, model.burst_probability) == (4, 0.5)


class TestInjectionErrors:
    """The S1 contract: typed errors with the offset attached."""

    def test_offset_out_of_range(self):
        cells = CellArray(16)
        with pytest.raises(FaultInjectionError) as err:
            cells.inject_fault(16)
        assert err.value.offset == 16

    def test_double_injection_refused(self):
        cells = CellArray(16)
        cells.inject_fault(3, stuck_value=1)
        with pytest.raises(FaultInjectionError) as err:
            cells.inject_fault(3, stuck_value=0)
        assert err.value.offset == 3

    def test_non_bit_stuck_value(self):
        cells = CellArray(16)
        with pytest.raises(FaultInjectionError):
            cells.inject_fault(0, stuck_value=2)

    def test_partial_injection_needs_a_partial_model(self):
        cells = CellArray(16)  # hard default
        with pytest.raises(FaultInjectionError) as err:
            cells.inject_fault(5, partial=True)
        assert err.value.offset == 5

    def test_stays_a_value_error(self):
        # historical callers caught ValueError; the typed error still is one
        cells = CellArray(16)
        with pytest.raises(ValueError):
            cells.inject_fault(99)


class TestHardSemantics:
    def test_hard_cells_have_no_maskable_offsets(self):
        cells = CellArray(16)
        cells.inject_fault(2, stuck_value=0)
        assert cells.maskable_offsets == []

    def test_injection_freezes_the_cell(self):
        cells = CellArray(8)
        cells.inject_fault(1, stuck_value=1)
        cells.write(np.zeros(8, dtype=np.uint8))
        assert cells.read()[1] == 1


class TestPartialSemantics:
    def test_partial_cell_reads_as_one_and_is_maskable(self):
        cells = CellArray(16, fault_model=PartiallyStuck())
        cells.inject_fault(4, partial=True)
        assert cells.read()[4] == 1
        assert cells.maskable_offsets == [4]

    def test_partial_cannot_freeze_at_zero(self):
        cells = CellArray(16, fault_model=PartiallyStuck())
        with pytest.raises(FaultInjectionError):
            cells.inject_fault(4, stuck_value=0, partial=True)

    def test_positional_maskability_is_pure(self):
        model = PartiallyStuck(partial_fraction=0.5)
        flags = [model.is_maskable(i) for i in range(512)]
        assert flags == [model.is_maskable(i) for i in range(512)]
        assert 0.3 < sum(flags) / 512 < 0.7  # tracks the fraction

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            PartiallyStuck(partial_fraction=1.5)
        with pytest.raises(ConfigurationError):
            PartiallyStuck(mask_budget=-1)
        with pytest.raises(ConfigurationError):
            PartiallyStuck(weak_scale=0.0)


class TestDriftSemantics:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            DriftBurst(burst_span=1)
        with pytest.raises(ConfigurationError):
            DriftBurst(burst_probability=-0.1)

    def test_burst_collapse_pulls_span_deaths_together(self, rng):
        model = DriftBurst(burst_span=8, burst_probability=1.0)
        base = np.arange(64, dtype=np.float64) + 1.0
        transformed, masked = model.transform_base_death(base, 64, rng)
        assert masked is None
        # every aligned span collapses onto its minimum
        for start in range(0, 64, 8):
            span = transformed[start : start + 8]
            assert (span == span.min()).all()


class TestLifetimeShaping:
    def test_hard_shaping_is_identity(self):
        model = NormalLifetime(mean_lifetime=50.0)
        assert HardStuckAt().shape_lifetime(model) is model

    def test_partial_shaping_lowers_the_mean(self):
        base = NormalLifetime(mean_lifetime=100.0)
        shaped = PartiallyStuck().shape_lifetime(base)
        assert shaped.mean < base.mean

    def test_drift_shaping_preserves_the_mean(self):
        base = NormalLifetime(mean_lifetime=100.0)
        assert DriftBurst().shape_lifetime(base).mean == base.mean

    def test_wear_skew_identity_when_cold(self, rng):
        base = NormalLifetime(mean_lifetime=100.0)
        skew = WearSkewLifetime(base=base, hot_fraction=0.0, hot_rate=2.0)
        a = base.sample(256, np.random.default_rng(5))
        b = skew.sample(256, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_wear_skew_only_touches_the_hot_set(self):
        base = NormalLifetime(mean_lifetime=100.0)
        skew = WearSkewLifetime(base=base, hot_fraction=0.25, hot_rate=2.5)
        a = base.sample(1024, np.random.default_rng(5))
        b = skew.sample(1024, np.random.default_rng(5))
        hot = a != b
        assert 0.1 < hot.mean() < 0.4  # tracks the fraction
        assert np.allclose(b[hot], np.maximum(a[hot] / 2.5, 1.0))

    def test_wear_skew_validation(self):
        base = NormalLifetime()
        with pytest.raises(ConfigurationError):
            WearSkewLifetime(base=base, hot_fraction=1.5, hot_rate=2.0)
        with pytest.raises(ConfigurationError):
            WearSkewLifetime(base=base, hot_fraction=0.5, hot_rate=0.5)


class TestEngineInvariance:
    """Vector/scalar and worker-count invariance under the new models."""

    @pytest.mark.parametrize("fault_model", ["partial", "drift"])
    def test_failure_curve_engines_agree(self, fault_model):
        spec = roster.aegis_spec(9, 61, 512)
        curves = [
            failure_curve(
                spec,
                trials=32,
                max_faults=30,
                seed=2013,
                engine=engine,
                fault_model=fault_model,
            )
            for engine in ("vector", "scalar")
        ]
        assert list(curves[0].probabilities) == list(curves[1].probabilities)

    @pytest.mark.parametrize("fault_model", ["partial", "drift"])
    def test_block_lifetime_engines_agree(self, fault_model):
        spec = roster.ecp_spec(6, 512)
        studies = [
            block_lifetime_study(
                spec, trials=16, seed=2013, engine=engine, fault_model=fault_model
            )
            for engine in ("vector", "scalar")
        ]
        assert studies[0].lifetime.mean == studies[1].lifetime.mean
        assert studies[0].faults.mean == studies[1].faults.mean

    @pytest.mark.parametrize("fault_model", ["partial", "drift"])
    def test_served_snapshot_worker_and_engine_invariant(self, fault_model):
        spec = roster.aegis_spec(9, 61, 512)
        digests = {
            _digest(
                run_load(
                    spec,
                    ops=600,
                    seed=7,
                    shards=2,
                    workers=workers,
                    n_addresses=8,
                    spares=3,
                    lifetime_model=NormalLifetime(mean_lifetime=40.0),
                    engine=engine,
                    fault_model=fault_model,
                ).telemetry.snapshot()
            )
            for workers in (1, 2)
            for engine in ("vector", "scalar")
        }
        assert len(digests) == 1

    def test_exec_context_threads_fault_model(self):
        ctx = ExecContext(fault_model="partial")
        assert ("fault_model", "partial") in ctx.cache_key
        assert ctx.cache_key != ExecContext().cache_key


class TestGoldenHardRegression:
    """The default model reproduces pre-refactor results byte for byte.

    Digests captured from the tree before the fault-model layer landed;
    every path below runs with ``fault_model`` unset (the hard default).
    """

    def test_failure_curve_aegis_vector(self):
        curve = failure_curve(
            roster.aegis_spec(9, 61, 512),
            trials=64,
            max_faults=40,
            seed=2013,
            engine="vector",
        )
        assert (
            _digest(list(curve.probabilities))
            == "75c91475a628b416fd487062cd3819b385adfbf3a204edd6213eb3649ca87b21"
        )

    def test_failure_curve_ecp_scalar(self):
        curve = failure_curve(
            roster.ecp_spec(6, 512),
            trials=64,
            max_faults=40,
            seed=2013,
            engine="scalar",
        )
        assert (
            _digest(list(curve.probabilities))
            == "a9f58fd30f43b0477c922b5792004de377031dc319ccac2d15b0e811f0117fef"
        )

    def test_simulated_pages_aegis(self):
        pages = simulate_pages(
            roster.aegis_spec(9, 61, 512), 8, range(12), 2013, engine="vector"
        )
        payload = [
            [p.lifetime_writes, p.faults_recovered, p.baseline_lifetime]
            for p in pages
        ]
        assert (
            _digest(payload)
            == "9807e0ad2360eced28208c8eed97c9cad729916439522c08ed5ca5b7350564e2"
        )

    def test_block_lifetime_ecp(self):
        study = block_lifetime_study(
            roster.ecp_spec(6, 512), trials=24, seed=2013, engine="vector"
        )
        assert (
            _digest([study.lifetime.mean, study.faults.mean])
            == "8ecce5fb32e4b4bded5932a8413b39d633ec8d5cbd898147aeda8b9060d2484b"
        )

    def test_served_telemetry_snapshot(self):
        report = run_load(
            roster.aegis_spec(9, 61, 512),
            ops=1500,
            seed=7,
            shards=2,
            workers=1,
            n_addresses=16,
            spares=6,
            lifetime_model=NormalLifetime(mean_lifetime=60.0),
            engine="vector",
        )
        assert (
            _digest(report.telemetry.snapshot())
            == "28783b7f5823e56a4f2688fc725af6ed4601fd9a5867ebc299eb84fe3f200749"
        )

    def test_campaign_config_and_aggregate(self):
        from repro.fleet.campaign import CampaignSpec, run_campaign

        spec = CampaignSpec(
            schemes=("aegis-9x61", "ecp6"),
            pages_per_scheme=8,
            blocks_per_page=4,
            chunk_pages=4,
            mean_endurance=1000.0,
        )
        assert (
            spec.config_digest(2013)
            == "e32c4eb4eafb70d7bbd9bc66e89bcd384a610229bc694573b7b3b7cd80647e34"
        )
        report = run_campaign(spec, ExecContext(seed=2013, workers=1, engine="vector"))
        assert (
            report.digest
            == "5629feeb327229f4a5206bd92f8c170516100dd312d57c928d64b1ba11c40199"
        )
