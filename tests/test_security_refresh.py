"""Tests for Security Refresh wear leveling and the trace workload."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pcm.device import PCMDevice
from repro.pcm.lifetime import FixedLifetime
from repro.pcm.wear import NoWearLeveling, SecurityRefreshWearLeveling
from repro.pcm.workload import HotColdWorkload, TraceWorkload
from repro.schemes.ideal import NoProtectionScheme


class TestSecurityRefresh:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SecurityRefreshWearLeveling(1)
        with pytest.raises(ConfigurationError):
            SecurityRefreshWearLeveling(8, refresh_interval=0)
        with pytest.raises(ConfigurationError):
            SecurityRefreshWearLeveling(12)  # not a power of two

    def test_key_changes_each_round(self, rng):
        policy = SecurityRefreshWearLeveling(16, refresh_interval=4, seed=1)
        alive = np.ones(16, dtype=bool)
        keys = set()
        for _ in range(40):
            policy.place(0, alive, rng)
            keys.add(policy.key)
        assert len(keys) > 3  # the mapping really re-randomises

    def test_bijective_within_a_round(self, rng):
        policy = SecurityRefreshWearLeveling(8, refresh_interval=1000, seed=2)
        alive = np.ones(8, dtype=bool)
        physical = {policy.place(logical, alive, rng) for logical in range(8)}
        assert physical == set(range(8))  # XOR remap is a permutation

    def test_spreads_hot_traffic(self, rng):
        policy = SecurityRefreshWearLeveling(8, refresh_interval=8, seed=3)
        alive = np.ones(8, dtype=bool)
        picks = [policy.place(0, alive, rng) for _ in range(2000)]
        counts = np.bincount(picks, minlength=8)
        assert (counts > 0).sum() == 8
        assert counts.max() < 3 * counts.mean()

    def test_repairs_skew_like_startgap(self):
        def half_life(policy_factory, seed=6):
            device = PCMDevice(
                8, 64, 1, NoProtectionScheme,
                lifetime_model=FixedLifetime(50),
                wear_leveling=policy_factory(),
                workload=HotColdWorkload(hot_fraction=0.25, hot_share=0.9),
                rng=np.random.default_rng(seed),
            )
            device.run_until_dead(max_writes=100_000)
            return device.half_lifetime()

        unlevelled = half_life(NoWearLeveling)
        refreshed = half_life(
            lambda: SecurityRefreshWearLeveling(8, refresh_interval=16)
        )
        # one key per 16 writes spreads the hot set noticeably (a shorter
        # refresh interval spreads harder at a higher migration cost)
        assert refreshed > 1.25 * unlevelled


class TestTraceWorkload:
    def test_replays_in_order(self, rng):
        workload = TraceWorkload([3, 1, 4, 1, 5])
        draws = [workload.next_logical_page(8, rng) for _ in range(7)]
        assert draws == [3, 1, 4, 1, 5, 3, 1]  # wraps around

    def test_out_of_range_entries_wrap(self, rng):
        workload = TraceWorkload([10])
        assert workload.next_logical_page(8, rng) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceWorkload([])
        with pytest.raises(ConfigurationError):
            TraceWorkload([-1])
