"""The multi-tenant cluster service: placement, QoS admission, live
migration, and the deterministic bench harness over it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    ClusterService,
    TenantSpec,
    default_tenants,
    run_cluster_bench,
)
from repro.cluster.qos import QoSClass
from repro.errors import (
    BackpressureError,
    ClusterCapacityError,
    ConfigurationError,
)
from repro.pcm.lifetime import FixedLifetime, NormalLifetime
from repro.sim.roster import aegis_spec

BITS = 64


class LongLife(FixedLifetime):
    """Cells that never wear out: behaviour comes only from the layer
    under test, not fault arrival."""

    def __init__(self):
        super().__init__(10**9)


def small_cluster(n_arrays=3, *, n_addresses=16, spares=2, buffer_capacity=4, **kwargs):
    kwargs.setdefault("lifetime_model", LongLife())
    return ClusterService(
        n_arrays,
        aegis_spec(5, 13, BITS),
        n_addresses=n_addresses,
        spares=spares,
        buffer_capacity=buffer_capacity,
        seed=7,
        **kwargs,
    )


def payload(fill: int) -> np.ndarray:
    bits = np.zeros(BITS, dtype=np.uint8)
    bits[: fill % (BITS + 1)] = 1
    return bits


class TestTenants:
    def test_registration_validates(self):
        cluster = small_cluster()
        spec = TenantSpec("acme", QoSClass.INTERACTIVE, 1)
        cluster.register_tenant(spec)
        with pytest.raises(ConfigurationError):
            cluster.register_tenant(spec)
        with pytest.raises(ConfigurationError):
            cluster.write("ghost", 0, payload(1))
        with pytest.raises(ConfigurationError):
            cluster.read("ghost", 0)

    def test_namespaces_are_isolated(self):
        cluster = small_cluster()
        cluster.register_tenant(TenantSpec("acme", QoSClass.INTERACTIVE, 1))
        cluster.register_tenant(TenantSpec("bbb", QoSClass.INTERACTIVE, 1))
        cluster.write("acme", 5, payload(10))
        cluster.write("bbb", 5, payload(30))
        cluster.flush_all()
        assert np.array_equal(cluster.read("acme", 5), payload(10))
        assert np.array_equal(cluster.read("bbb", 5), payload(30))

    def test_unwritten_keys_read_as_zeros_without_placement(self):
        cluster = small_cluster()
        cluster.register_tenant(TenantSpec("acme", QoSClass.INTERACTIVE, 1))
        assert not cluster.read("acme", 3).any()
        assert cluster.key_count == 0  # reads never create placements


class TestQoS:
    def fill_node(self, cluster, tenant, node):
        """Write through ``tenant`` until ``node``'s buffer hits the
        bulk watermark, returning the addresses used."""
        used = []
        for address in range(200):
            if node.occupancy >= cluster.bulk_watermark:
                return used
            if cluster.node_of(tenant, address) is None:
                target = cluster._place_node((tenant, address))
                if target is not node:
                    continue
            cluster.write(tenant, address, payload(address))
            used.append(address)
        pytest.fail("never reached the bulk watermark")

    def test_bulk_writer_backpressured_at_the_watermark(self):
        cluster = small_cluster(n_addresses=64, buffer_capacity=4)
        cluster.register_tenant(TenantSpec("bulk", QoSClass.BULK, 1))
        used = self.fill_node(cluster, "bulk", cluster.nodes[0])
        with pytest.raises(BackpressureError) as excinfo:
            cluster.write("bulk", used[0], payload(1))
        error = excinfo.value
        assert error.array == cluster.nodes[0].name
        assert error.tenant == "bulk"
        assert error.retry_after >= 1
        backpressure = cluster.telemetry.metrics.counter_total(
            "tenant_backpressure_total", qos="bulk"
        )
        assert backpressure == 1

    def test_interactive_writer_never_backpressured(self):
        cluster = small_cluster(n_addresses=64, buffer_capacity=4)
        cluster.register_tenant(TenantSpec("vip", QoSClass.INTERACTIVE, 1))
        for address in range(40):  # far past any watermark
            cluster.write("vip", address, payload(address))
        assert (
            cluster.telemetry.metrics.counter_total("tenant_backpressure_total") == 0
        )

    def test_maintenance_reopens_bulk_admission(self):
        cluster = small_cluster(n_addresses=64, buffer_capacity=4)
        cluster.register_tenant(TenantSpec("bulk", QoSClass.BULK, 1))
        node = cluster.nodes[0]
        used = self.fill_node(cluster, "bulk", node)
        with pytest.raises(BackpressureError):
            cluster.write("bulk", used[0], payload(1))
        flushed = cluster.maintenance()["flushed"]
        assert flushed >= 1
        cluster.write("bulk", used[0], payload(1))  # admitted again


class TestMigration:
    def test_drain_array_preserves_read_your_writes(self):
        cluster = small_cluster(n_arrays=3, n_addresses=32, spares=4)
        for spec in default_tenants(2):
            cluster.register_tenant(spec)
        tenants = [spec.tenant_id for spec in cluster.tenants]
        written = {}
        for tenant in tenants:
            for address in range(12):
                bits = payload(address * 3 + 1)
                cluster.write(tenant, address, bits, admit=False)
                written[(tenant, address)] = bits
        drained = cluster.nodes[1]
        resident_before = sum(
            1 for placed in cluster._placement.values() if placed[0] == 1
        )
        assert resident_before > 0, "the drill needs residents to move"
        moved = cluster.drain_array(1)
        assert moved == resident_before
        assert drained.name not in cluster.ring
        assert all(placed[0] != 1 for placed in cluster._placement.values())
        for (tenant, address), bits in written.items():
            assert np.array_equal(cluster.read(tenant, address), bits)
        migrations = cluster.telemetry.metrics.counter_total(
            "migrations_total", kind="cross_array"
        )
        assert migrations == moved

    def test_new_writes_skip_a_draining_array(self):
        cluster = small_cluster(n_arrays=2, n_addresses=32)
        cluster.register_tenant(TenantSpec("acme", QoSClass.INTERACTIVE, 1))
        cluster.drain_array(0)
        for address in range(8):
            cluster.write("acme", address, payload(address))
        assert all(placed[0] == 1 for placed in cluster._placement.values())

    def test_capacity_exhaustion_is_typed(self):
        cluster = small_cluster(n_arrays=1, n_addresses=4)
        cluster.register_tenant(TenantSpec("acme", QoSClass.INTERACTIVE, 1))
        for address in range(4):
            cluster.write("acme", address, payload(address))
        with pytest.raises(ClusterCapacityError):
            cluster.write("acme", 99, payload(1))

    def test_placement_digest_tracks_the_table(self):
        cluster = small_cluster()
        cluster.register_tenant(TenantSpec("acme", QoSClass.INTERACTIVE, 1))
        empty = cluster.placement_digest()
        cluster.write("acme", 0, payload(1))
        assert cluster.placement_digest() != empty
        # pure function of the placement table
        assert cluster.placement_digest() == cluster.placement_digest()


class TestClusterBench:
    BENCH_KWARGS = dict(
        ops=240,
        n_arrays=3,
        tenants=4,
        seed=2013,
        tenant_addresses=12,
        n_addresses=24,
        spares=4,
        lifetime_model=NormalLifetime(mean_lifetime=40.0),
        degrade_at=120,
        degrade_array=1,
    )

    def run(self, **overrides):
        kwargs = dict(self.BENCH_KWARGS, **overrides)
        return run_cluster_bench(aegis_spec(5, 13, BITS), **kwargs)

    def test_audit_is_clean_through_the_degrade_drill(self):
        report = self.run()
        assert report.audit_failures == 0
        assert report.audit_checked > 0
        migrations = report.telemetry.metrics.counter_total(
            "migrations_total", kind="cross_array"
        )
        assert migrations > 0, "the drained array's keys must migrate"
        interactive = report.telemetry.metrics.counter_total(
            "tenant_backpressure_total", qos="interactive"
        )
        assert interactive == 0

    def test_digests_invariant_across_workers_and_engines(self):
        baseline = self.run()
        for overrides in ({"workers": 2}, {"engine": "scalar"}):
            other = self.run(**overrides)
            assert other.audit_digest == baseline.audit_digest, overrides
            assert other.snapshot_digest == baseline.snapshot_digest, overrides

    def test_per_tenant_summary_is_complete(self):
        report = self.run()
        assert set(report.per_tenant) == {f"tenant{i}" for i in range(4)}
        for entry in report.per_tenant.values():
            assert entry["qos"] in ("interactive", "bulk")
            assert entry["writes"] > 0
            if entry["qos"] == "interactive":
                assert entry["backpressure"] == 0
