"""Tests for the experiment drivers (small-scale smoke + shape checks)."""

import pytest

from repro.experiments import (
    REGISTRY,
    all_experiment_ids,
    clear_study_cache,
    run_experiment,
)

SMALL = dict(n_pages=4, trials=30, seed=7)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_study_cache()
    yield
    clear_study_cache()


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        expected = {"table1"} | {f"fig{i}" for i in range(5, 14)}
        assert expected <= set(REGISTRY)

    def test_order(self):
        ids = all_experiment_ids()
        assert ids[0] == "table1"
        assert ids.index("fig5") < ids.index("fig13")

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestTable1:
    def test_matches_paper(self):
        result = run_experiment("table1")
        rows = {row[0]: list(row[1:]) for row in result.rows}
        assert rows["Aegis"] == [23, 24, 25, 26, 27, 27, 28, 34, 43, 53]
        assert rows["SAFER"] == [1, 7, 14, 22, 35, 55, 91, 159, 292, 552]
        assert rows["Aegis-rw-p"] == [1, 8, 9, 15, 15, 21, 21, 27, 27, 32]

    def test_render_contains_title(self):
        out = run_experiment("table1").render()
        assert "Table 1" in out
        assert "Aegis-rw" in out


class TestFigureDrivers:
    def test_fig5_shape_and_ordering(self):
        result = run_experiment("fig5", **SMALL)
        labels = result.column("Scheme")
        faults = {label: v for label, v in zip(labels, result.column("Faults/page"))}
        # the paper's headline: Aegis 9x61 far above SAFER64 and ECP6
        assert faults["Aegis 9x61"] > 1.5 * faults["SAFER64"]
        assert faults["Aegis 9x61"] > 2 * faults["ECP6"]

    def test_fig6_improvements_above_one(self):
        result = run_experiment("fig6", **SMALL)
        for value in result.column("Improvement (x)"):
            assert value > 1

    def test_fig7_per_bit_positive(self):
        result = run_experiment("fig7", **SMALL)
        assert all(v > 0 for v in result.column("Per-bit contribution"))

    def test_fig5_to_7_share_studies(self):
        """The three views must come from the same memoised simulations."""
        r5 = run_experiment("fig5", **SMALL)
        r6 = run_experiment("fig6", **SMALL)
        assert r5.column("Scheme") == r6.column("Scheme")

    def test_fig8_hard_ftc_zeros(self):
        result = run_experiment("fig8", trials=50, max_faults=10, seed=7)
        header_idx = result.headers.index("ECP6")
        row_f6 = next(row for row in result.rows if row[0] == 6)
        row_f8 = next(row for row in result.rows if row[0] == 8)
        assert row_f6[header_idx] == 0.0
        assert row_f8[header_idx] == 1.0

    def test_fig9_half_lifetime_ordering(self):
        result = run_experiment("fig9", **SMALL)
        half = {
            label: float(value)
            for label, value in zip(
                result.column("Scheme"), result.column("Half lifetime (writes)")
            )
        }
        assert half["None"] < half["ECP6"] < half["Aegis 9x61"]

    def test_fig10_plateau(self):
        result = run_experiment("fig10", trials=12, pointer_counts=(1, 4, 12), seed=7)
        column = [float(row[1]) for row in result.rows]  # 23x23 lifetimes
        assert column[0] < column[-1]  # p=1 well below the plateau

    def test_fig11_rw_beats_plain(self):
        result = run_experiment("fig11", **SMALL)
        faults = dict(zip(result.column("Scheme"), result.column("Faults/page")))
        for a, b in ((23, 23), (9, 61)):
            assert faults[f"Aegis-rw {a}x{b}"] > faults[f"Aegis {a}x{b}"]

    def test_fig12_and_13_render(self):
        for experiment_id in ("fig12", "fig13"):
            out = run_experiment(experiment_id, **SMALL).render()
            assert "Aegis-rw-p" in out
