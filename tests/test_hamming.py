"""Tests for the (72, 64) Hamming SEC-DED codec and block scheme."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.base import roundtrip
from repro.schemes.hamming import CODE_BITS, DATA_BITS, HammingScheme, decode, encode
from tests.conftest import random_data


class TestCodec:
    def test_clean_roundtrip(self, rng):
        for _ in range(20):
            data = random_data(rng, DATA_BITS)
            decoded, corrected = decode(encode(data))
            assert corrected == 0
            assert np.array_equal(decoded, data)

    def test_single_error_corrected_every_position(self, rng):
        data = random_data(rng, DATA_BITS)
        code = encode(data)
        for position in range(CODE_BITS):
            corrupted = code.copy()
            corrupted[position] ^= 1
            decoded, corrected = decode(corrupted)
            assert corrected == 1
            assert np.array_equal(decoded, data)

    def test_double_error_detected(self, rng):
        data = random_data(rng, DATA_BITS)
        code = encode(data)
        for p1, p2 in [(0, 1), (3, 70), (64, 71), (10, 40)]:
            corrupted = code.copy()
            corrupted[p1] ^= 1
            corrupted[p2] ^= 1
            with pytest.raises(UncorrectableError):
                decode(corrupted)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            encode(np.zeros(63, dtype=np.uint8))
        with pytest.raises(ValueError):
            decode(np.zeros(71, dtype=np.uint8))


class TestHammingScheme:
    def test_identity(self):
        scheme = HammingScheme(CellArray(512))
        assert scheme.overhead_bits == 64  # 12.5%, the paper's ECC budget
        assert scheme.hard_ftc == 1

    def test_block_size_validation(self):
        with pytest.raises(ConfigurationError):
            HammingScheme(CellArray(100))

    def test_one_fault_per_word_recoverable(self, rng):
        cells = CellArray(512)
        for word in range(8):
            cells.inject_fault(word * 64 + int(rng.integers(0, 64)),
                               stuck_value=int(rng.integers(0, 2)))
        scheme = HammingScheme(cells)
        for _ in range(10):
            assert roundtrip(scheme, random_data(rng, 512))

    def test_two_wrong_in_one_word_fails(self):
        cells = CellArray(512)
        cells.inject_fault(0, stuck_value=1)
        cells.inject_fault(1, stuck_value=1)
        scheme = HammingScheme(cells)
        with pytest.raises(UncorrectableError):
            scheme.write(np.zeros(512, dtype=np.uint8))

    def test_two_faults_one_wrong_survives(self):
        cells = CellArray(512)
        cells.inject_fault(0, stuck_value=1)  # wrong for zeros
        cells.inject_fault(1, stuck_value=0)  # right for zeros
        scheme = HammingScheme(cells)
        data = np.zeros(512, dtype=np.uint8)
        scheme.write(data)
        assert np.array_equal(scheme.read(), data)

    def test_fault_in_check_bits_corrected(self):
        cells = CellArray(512)
        scheme = HammingScheme(cells)
        scheme.check_cells.inject_fault(0, stuck_value=1)
        data = np.zeros(512, dtype=np.uint8)
        scheme.write(data)
        assert np.array_equal(scheme.read(), data)
