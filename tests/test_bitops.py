"""Unit tests for repro.util.bitops."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitops import (
    bits_to_int,
    ceil_log2,
    hamming_distance,
    int_to_bits,
    invert_bits,
    mask_from_offsets,
    offsets_from_mask,
    popcount,
    random_bits,
)


class TestRoundtrips:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_int_bits_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 64)) == value

    @given(st.lists(st.integers(min_value=0, max_value=200), unique=True))
    def test_mask_offsets_roundtrip(self, offsets):
        assert offsets_from_mask(mask_from_offsets(offsets)) == sorted(offsets)

    @given(st.integers(min_value=0, max_value=2**512 - 1))
    def test_wide_roundtrip_survives_packbits(self, value):
        # 512-bit masks exercise the multi-byte packbits fast path
        assert bits_to_int(int_to_bits(value, 512)) == value

    @given(st.integers(min_value=1, max_value=77))
    def test_ragged_width(self, width):
        # widths that are not byte multiples must not gain phantom bits
        bits = int_to_bits((1 << width) - 1, width)
        assert bits.shape == (width,)
        assert bits_to_int(bits) == (1 << width) - 1

    def test_zero_width(self):
        assert int_to_bits(0, 0).tolist() == []
        assert bits_to_int(np.zeros(0, dtype=np.uint8)) == 0

    def test_bits_to_int_accepts_bool_and_int_dtypes(self):
        expected = 0b101
        for dtype in (np.uint8, bool, np.int64):
            assert bits_to_int(np.array([1, 0, 1], dtype=dtype)) == expected

    def test_int_to_bits_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_int_to_bits_boundary_fits(self):
        assert bits_to_int(int_to_bits(15, 4)) == 15

    def test_int_to_bits_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)


class TestPopcount:
    @given(st.integers(min_value=0, max_value=2**128))
    def test_matches_bin(self, value):
        assert popcount(value) == bin(value).count("1")


class TestCeilLog2:
    def test_table(self):
        assert [ceil_log2(n) for n in (1, 2, 3, 4, 7, 8, 9, 512)] == [
            0, 1, 2, 2, 3, 3, 4, 9,
        ]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_bounds(self, n):
        k = ceil_log2(n)
        assert 2**k >= n
        assert k == 0 or 2 ** (k - 1) < n


class TestArrayHelpers:
    def test_invert_bits(self):
        bits = np.array([0, 1, 1, 0], dtype=np.uint8)
        mask = np.array([1, 1, 0, 0], dtype=np.uint8)
        assert invert_bits(bits, mask).tolist() == [1, 0, 1, 0]

    def test_hamming_distance(self):
        a = np.array([0, 1, 1], dtype=np.uint8)
        b = np.array([1, 1, 0], dtype=np.uint8)
        assert hamming_distance(a, b) == 2

    def test_hamming_distance_shape_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance(np.zeros(3, dtype=np.uint8), np.zeros(4, dtype=np.uint8))

    def test_random_bits_binary(self):
        rng = np.random.default_rng(1)
        bits = random_bits(rng, 1000)
        assert set(np.unique(bits)) <= {0, 1}
        assert 300 < bits.sum() < 700  # not degenerate
