"""Tests for the event-driven page simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pcm.lifetime import FixedLifetime
from repro.sim.page_sim import run_page_study, simulate_page
from repro.sim.roster import aegis_spec, ecp_spec, no_protection_spec, safer_spec


class TestSimulatePage:
    def test_no_protection_dies_at_first_death(self, rng):
        result = simulate_page(no_protection_spec(512), 4, rng)
        assert result.faults_recovered == 0
        assert result.lifetime_writes == pytest.approx(result.baseline_lifetime)
        assert result.improvement == pytest.approx(1.0)

    def test_ecp_fault_count_is_block_local(self, rng):
        # ECP1 pages die when any single block collects 2 faults
        result = simulate_page(ecp_spec(1, 512), 8, rng)
        assert result.faults_recovered >= 1
        assert result.lifetime_writes > result.baseline_lifetime

    def test_deterministic_under_seed(self):
        spec = aegis_spec(9, 61, 512)
        r1 = simulate_page(spec, 8, np.random.default_rng(42))
        r2 = simulate_page(spec, 8, np.random.default_rng(42))
        assert r1 == r2

    def test_write_probability_scales_lifetime(self):
        spec = ecp_spec(2, 512)
        slow = simulate_page(
            spec, 4, np.random.default_rng(7), write_probability=0.5
        )
        fast = simulate_page(
            spec, 4, np.random.default_rng(7), write_probability=1.0
        )
        # programming every bit on every write halves the page lifetime
        assert slow.lifetime_writes == pytest.approx(2 * fast.lifetime_writes)

    def test_invalid_write_probability(self, rng):
        with pytest.raises(ConfigurationError):
            simulate_page(ecp_spec(1, 512), 2, rng, write_probability=0.0)

    def test_inversion_wear_shortens_lifetime(self):
        """With wear amplification on, cache-less schemes lose lifetime."""
        spec = aegis_spec(9, 61, 512)
        lifetimes = {}
        for wear in (0.0, 1.0):
            study_lifetimes = []
            for page in range(8):
                result = simulate_page(
                    spec,
                    16,
                    np.random.default_rng(page),
                    inversion_wear_rate=wear,
                )
                study_lifetimes.append(result.lifetime_writes)
            lifetimes[wear] = np.mean(study_lifetimes)
        assert lifetimes[1.0] < lifetimes[0.0]

    def test_fixed_lifetime_model(self, rng):
        # deterministic endurance: first deaths happen together
        result = simulate_page(
            no_protection_spec(512),
            2,
            rng,
            lifetime_model=FixedLifetime(100),
        )
        assert result.lifetime_writes == pytest.approx(200)  # 100 / 0.5


class TestFaultTracing:
    def test_observer_sees_every_fault_in_order(self):
        from repro.sim.page_sim import FaultEvent

        events: list[FaultEvent] = []
        result = simulate_page(
            ecp_spec(2, 512), 4, np.random.default_rng(5), observer=events.append
        )
        assert len(events) == result.faults_recovered + 1
        times = [e.time for e in events]
        assert times == sorted(times)
        assert events[-1].fatal
        assert all(not e.fatal for e in events[:-1])
        assert events[-1].time == pytest.approx(result.lifetime_writes)

    def test_block_fault_counts_consistent(self):
        events = []
        simulate_page(
            ecp_spec(3, 512), 4, np.random.default_rng(6), observer=events.append
        )
        per_block: dict[int, int] = {}
        for event in events:
            per_block[event.block] = per_block.get(event.block, 0) + 1
            assert event.block_fault_count == per_block[event.block]
        # the fatal block holds pointer-budget + 1 faults
        assert per_block[events[-1].block] == 4


class TestWearAccelerationMechanics:
    def test_group_mates_die_early_by_exact_half(self):
        """With inversion wear equal to the write probability, a cell that
        joins a fault's group at time t0 has its remaining life halved:
        death at t0 + (T - t0)/2 exactly."""
        from repro.pcm.lifetime import LifetimeModel
        from repro.sim.page_sim import FaultEvent
        from repro.sim.roster import aegis_spec

        spec = aegis_spec(9, 61, 512)
        rect = spec.make_checker(np.random.default_rng(0)).rect

        class TwoTier(LifetimeModel):
            """One early cell; its slope-0 group mates next; rest far out."""

            def sample(self, n_cells, rng):
                endurance = np.full(n_cells, 1000.0)
                endurance[0] = 10.0  # the first fault, at offset 0
                for mate in rect.group_members(rect.group_of(0, 0), 0):
                    if mate != 0:
                        endurance[mate] = 100.0
                return endurance

            @property
            def mean(self):
                return 1000.0

        events: list[FaultEvent] = []
        simulate_page(
            spec,
            1,
            np.random.default_rng(1),
            lifetime_model=TwoTier(),
            write_probability=0.5,
            inversion_wear_rate=0.5,
            observer=events.append,
        )
        first, second = events[0], events[1]
        assert first.offset == 0 and first.time == pytest.approx(20.0)
        # base death of a mate is 200; accelerated from t=20: 20 + 180/2
        assert second.time == pytest.approx(110.0)
        assert second.offset in rect.group_members(rect.group_of(0, 0), 0)


class TestRunPageStudy:
    def test_study_shape(self):
        study = run_page_study(ecp_spec(2, 512), n_pages=6, seed=9)
        assert study.faults.n == 6
        assert len(study.results) == 6
        assert study.improvement > 1
        assert study.lifetimes().shape == (6,)

    def test_per_bit_contribution(self):
        study = run_page_study(ecp_spec(2, 512), n_pages=4, seed=9)
        expected = (study.improvement - 1) / 21
        assert study.improvement_per_bit == pytest.approx(expected)

    def test_same_pages_across_schemes(self):
        """Different schemes must see the same endurance draws per page
        index (paired comparison)."""
        a = run_page_study(ecp_spec(2, 512), n_pages=4, seed=11)
        b = run_page_study(safer_spec(32, 512), n_pages=4, seed=11)
        assert a.baseline_lifetime.mean == pytest.approx(
            b.baseline_lifetime.mean, rel=1e-12
        )

    def test_block_size_must_divide_page(self):
        with pytest.raises(ConfigurationError):
            run_page_study(ecp_spec(2, 100), n_pages=1, seed=0)

    def test_adaptive_stopping_reaches_target(self):
        study = run_page_study(
            ecp_spec(2, 512), n_pages=8, seed=13,
            target_relative_ci=0.10, max_pages=256,
        )
        assert study.faults.n >= 8
        assert (
            study.faults.half_width <= 0.10 * study.faults.mean
            or study.faults.n == 256
        )

    def test_adaptive_stopping_validation(self):
        import pytest as _pytest

        with _pytest.raises(ConfigurationError):
            run_page_study(ecp_spec(2, 512), n_pages=2, target_relative_ci=1.5)

    def test_better_scheme_more_faults(self):
        weak = run_page_study(ecp_spec(1, 512), n_pages=8, seed=3)
        strong = run_page_study(aegis_spec(9, 61, 512), n_pages=8, seed=3)
        assert strong.faults.mean > 3 * weak.faults.mean
        assert strong.lifetime.mean > weak.lifetime.mean
