"""Tests for the SLO / error-budget engine (:mod:`repro.obs.slo`).

Covers the spec grammar, the burn-rate math, the exactly-once alert
poll, and the end-to-end contract: a cluster-bench degrade drill fires a
burn-rate alert, the control plane answers it with ``kind="alert"``
migrations, and every series/verdict/alert surface is bit-identical
across worker counts and drain engines.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, TimeSeriesRecorder
from repro.obs.report import render_slo_report
from repro.obs.slo import (
    SLOEngine,
    SLOSpec,
    default_cluster_slos,
    default_service_slos,
    parse_slo,
    read_slo_jsonl,
    write_slo_jsonl,
)
from repro.cluster.bench import run_cluster_bench
from repro.pcm.lifetime import NormalLifetime
from repro.sim.roster import aegis_spec


class TestSpecGrammar:
    def test_ratio_spec(self):
        spec = parse_slo(
            "write_loss: writes_total{outcome=lost} / writes_total < 0.001"
        )
        assert spec.name == "write_loss"
        assert spec.kind == "ratio"
        assert spec.bad_series == "writes_total{outcome=lost}"
        assert spec.series == "writes_total"
        assert spec.objective == 0.001

    def test_quantile_spec(self):
        spec = parse_slo("p99(stage_cost{stage=drain}) < 640")
        assert spec.kind == "quantile"
        assert spec.q == 0.99
        assert spec.bound == 640
        assert spec.objective == pytest.approx(0.01)

    def test_retention_spec(self):
        spec = parse_slo("capacity_retention{scope=cluster} >= 0.9")
        assert spec.kind == "retention"
        assert spec.bound == 0.9

    def test_name_defaults_to_series(self):
        spec = parse_slo("writes_total{outcome=lost} / writes_total < 0.01")
        assert spec.name

    def test_bad_specs_rejected(self):
        for text in ("nonsense", "a / b < 0", "p200(x) < 5", "x >= -1"):
            with pytest.raises(ConfigurationError):
                parse_slo(text)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            SLOSpec.ratio("x", bad="a", total="b", objective=2.0)
        with pytest.raises(ConfigurationError):
            SLOSpec.quantile("x", series="s", q=1.5, bound=10)

    def test_default_rosters(self):
        service = default_service_slos()
        cluster = default_cluster_slos()
        assert {spec.name for spec in service} <= {spec.name for spec in cluster}
        assert any(spec.action == "migrate" for spec in cluster)
        for spec in cluster:
            assert spec.describe()


def _engine(specs, fill):
    """Build a recorder + engine; ``fill(registry, sample)`` drives it."""
    registry = MetricsRegistry()
    recorder = TimeSeriesRecorder(registry, bucket_width=10, capacity=64)
    engine = SLOEngine(recorder, specs)
    fill(registry, recorder.sample)
    return engine


class TestBurnMath:
    def test_ratio_burn_and_budget(self):
        spec = SLOSpec.ratio(
            "loss", bad="bad_total", total="ops_total", objective=0.1,
            fast_window=1, slow_window=2, burn_threshold=2.0,
        )

        def fill(registry, sample):
            registry.inc("ops_total", 10)
            sample(5)                       # bucket 0: clean
            registry.inc("ops_total", 10)
            registry.inc("bad_total", 4)    # 40% bad = 4x the objective
            sample(15)                      # bucket 1: burning
            registry.inc("ops_total", 10)
            sample(25)                      # bucket 2: clean again

        engine = _engine((spec,), fill)
        report = engine.evaluate()["slos"]["loss"]
        assert report["events"] == 30
        assert report["bad"] == 4
        assert report["budget"] == pytest.approx(3.0)
        assert report["budget_consumed"] == pytest.approx(4 / 3)
        assert report["burn_fast"] == [0.0, 4.0, 0.0]
        # slow window 2: bucket 1 sees 4/20 = 2x, bucket 2 sees 4/20 = 2x
        assert report["burn_slow"] == [0.0, 2.0, 2.0]
        # alert requires fast AND slow >= threshold -> only bucket 1
        assert report["violating_buckets"] == 1
        assert [alert["bucket"] for alert in report["alerts"]] == [1]

    def test_quantile_bad_counts_tail(self):
        spec = SLOSpec.quantile(
            "p99_cost", series="stage_cost", q=0.99, bound=64
        )

        def fill(registry, sample):
            for value in (5, 10, 100):
                registry.observe("stage_cost", value, edges=(8, 64))
            sample(5)

        engine = _engine((spec,), fill)
        report = engine.evaluate()["slos"]["p99_cost"]
        assert report["events"] == 3
        assert report["bad"] == 1   # the 100 observation is beyond the bound

    def test_retention_bad_counts_dips(self):
        spec = SLOSpec.retention(
            "cap", series="capacity_retention{scope=cluster}", minimum=0.9
        )

        def fill(registry, sample):
            registry.set_gauge("capacity_retention", 1.0, scope="cluster")
            sample(5)
            registry.set_gauge("capacity_retention", 0.8, scope="cluster")
            sample(15)

        engine = _engine((spec,), fill)
        report = engine.evaluate()["slos"]["cap"]
        assert report["events"] == 2    # sampled buckets
        assert report["bad"] == 1

    def test_duplicate_names_rejected(self):
        recorder = TimeSeriesRecorder(MetricsRegistry(), bucket_width=10)
        specs = (parse_slo("a: x / y < 0.1"), parse_slo("a: z / y < 0.1"))
        with pytest.raises(ConfigurationError):
            SLOEngine(recorder, specs)


class TestPoll:
    def _burst_engine(self):
        spec = SLOSpec.ratio(
            "loss", bad="bad_total", total="ops_total", objective=0.1,
            fast_window=1, slow_window=1, burn_threshold=2.0,
        )
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, bucket_width=10, capacity=64)
        return registry, recorder, SLOEngine(recorder, (spec,))

    def test_rising_edge_fires_exactly_once(self):
        registry, recorder, engine = self._burst_engine()
        registry.inc("ops_total", 10)
        registry.inc("bad_total", 5)
        recorder.sample(5)
        alerts = engine.poll()
        assert [alert.slo for alert in alerts] == ["loss"]
        assert engine.poll() == []          # same state: no re-fire
        registry.inc("ops_total", 10)
        recorder.sample(15)                 # clean bucket: burn drops
        assert engine.poll() == []
        registry.inc("ops_total", 10)
        registry.inc("bad_total", 5)
        recorder.sample(25)                 # second burst: new rising edge
        assert [alert.bucket for alert in engine.poll()] == [2]

    def test_active_actions_is_level_triggered(self):
        spec = SLOSpec.ratio(
            "loss", bad="bad_total", total="ops_total", objective=0.1,
            fast_window=1, slow_window=2, burn_threshold=2.0, action="migrate",
        )
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, bucket_width=10, capacity=64)
        engine = SLOEngine(recorder, (spec,))
        assert engine.active_actions() == frozenset()
        registry.inc("ops_total", 10)
        registry.inc("bad_total", 5)
        recorder.sample(5)
        assert engine.active_actions() == {"migrate"}
        assert engine.poll() and engine.poll() == []
        # the action stays active while the burn condition holds, even
        # though the rising edge has already been consumed by poll()
        registry.inc("ops_total", 10)
        registry.inc("bad_total", 5)
        recorder.sample(15)
        assert engine.poll() == []          # still the same firing episode
        assert engine.active_actions() == {"migrate"}
        # a clean bucket ends the episode: the action deactivates
        registry.inc("ops_total", 10)
        recorder.sample(25)
        assert engine.active_actions() == frozenset()

    def test_alert_event_shape(self):
        registry, recorder, engine = self._burst_engine()
        registry.inc("ops_total", 10)
        registry.inc("bad_total", 5)
        recorder.sample(5)
        (alert,) = engine.poll()
        record = alert.to_dict()
        assert record["slo"] == "loss"
        assert record["bucket"] == 0
        assert record["clock"] == 10
        assert record["burn_fast"] == pytest.approx(5.0)


# ---------------------------------------------------------------------------
# the end-to-end contract: degrade drill -> alert -> maintenance migration


DRILL = dict(
    ops=1500,
    n_arrays=3,
    tenants=4,
    seed=2013,
    n_addresses=96,
    lifetime_model=NormalLifetime(mean_lifetime=30.0),
    degrade_at=750,
    degrade_array=1,
    degrade_threshold=2,
)


@pytest.fixture(scope="module")
def drill_reports():
    spec = aegis_spec(9, 61, 512)
    return {
        (workers, engine): run_cluster_bench(
            spec, workers=workers, engine=engine, **DRILL
        )
        for workers, engine in [(1, "vector"), (2, "scalar"), (4, "vector")]
    }


class TestDegradeDrill:
    def test_digests_identical_across_workers_and_engines(self, drill_reports):
        digests = {
            (report.audit_digest, report.snapshot_digest)
            for report in drill_reports.values()
        }
        assert len(digests) == 1
        assert all(r.audit_failures == 0 for r in drill_reports.values())

    def test_alert_fires_and_triggers_maintenance_migration(self, drill_reports):
        report = drill_reports[(1, "vector")]
        metrics = report.telemetry.metrics
        assert metrics.counter_total("slo_alerts_total", slo="degrade_burst") >= 1
        assert metrics.counter_total("migrations_total", kind="alert") >= 1
        slo = report.snapshot["slo"]["slos"]["degrade_burst"]
        assert slo["action"] == "migrate"
        assert len(slo["alerts"]) >= 1
        events = [
            event for event in report.telemetry.events
            if event.get("event") == "slo_alert"
        ]
        assert any(event["slo"] == "degrade_burst" for event in events)

    def test_slo_sections_inside_digested_snapshot(self, drill_reports):
        report = drill_reports[(1, "vector")]
        snapshot = report.snapshot
        assert "timeseries" in snapshot
        assert snapshot["timeseries"]["samples"] > 0
        assert snapshot["config"]["series_bucket"] > 0
        assert "clock" in snapshot

    def test_series_export_and_report_surface_the_alert(
        self, drill_reports, tmp_path
    ):
        report = drill_reports[(1, "vector")]
        path = tmp_path / "series.jsonl"
        report.write_series_jsonl(str(path))
        data = read_slo_jsonl(str(path))
        assert any(slo["name"] == "degrade_burst" for slo in data["slos"])
        assert any(alert["slo"] == "degrade_burst" for alert in data["alerts"])
        rendered = render_slo_report(str(path), title="Drill")
        assert "degrade_burst" in rendered
        assert "## Alert timeline" in rendered
        assert "migrate" in rendered

    def test_series_off_disables_slo_surfaces(self):
        report = run_cluster_bench(
            aegis_spec(9, 61, 512),
            ops=200,
            n_arrays=2,
            tenants=2,
            seed=7,
            series_bucket=0,
            workers=1,
        )
        assert "slo" not in report.snapshot
        assert "timeseries" not in report.snapshot
        with pytest.raises(ConfigurationError):
            report.write_series_jsonl("/tmp/unused.jsonl")


class TestSLOExport:
    def test_write_slo_jsonl_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(registry, bucket_width=10, capacity=16)
        registry.inc("ops_total", 10)
        registry.inc("bad_total", 5)
        recorder.sample(5)
        spec = SLOSpec.ratio(
            "loss", bad="bad_total", total="ops_total", objective=0.1,
            fast_window=1, slow_window=1,
        )
        path = tmp_path / "slo.jsonl"
        lines = write_slo_jsonl(str(path), recorder, (spec,))
        data = read_slo_jsonl(str(path))
        assert lines == len(data["series"]) + len(data["slos"]) + len(
            data["alerts"]
        ) + 1
        (slo,) = data["slos"]
        assert slo["name"] == "loss"
        assert slo["budget_consumed"] == pytest.approx(5.0)
        (alert,) = data["alerts"]
        assert alert["slo"] == "loss"
