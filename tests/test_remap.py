"""Tests for the FREE-p-style spare-block remapping extension."""

import pytest

from repro.remap.sim import remap_page_study
from repro.sim.roster import aegis_spec, ecp_spec


class TestRemapStudy:
    def test_zero_spares_equals_plain_page(self):
        result = remap_page_study(
            ecp_spec(2, 512), spares=0, blocks_per_page=8, n_pages=6, seed=1
        )
        assert result.remaps.mean == 0

    def test_spares_extend_lifetime_monotonically(self):
        lifetimes = []
        for spares in (0, 2, 6):
            result = remap_page_study(
                ecp_spec(2, 512), spares=spares, blocks_per_page=8, n_pages=6, seed=1
            )
            lifetimes.append(result.lifetime.mean)
            assert result.remaps.mean <= spares
        assert lifetimes == sorted(lifetimes)
        assert lifetimes[2] > lifetimes[0]

    def test_all_spares_consumed_before_death(self):
        # with few spares relative to block count, every spare gets used
        result = remap_page_study(
            ecp_spec(1, 512), spares=3, blocks_per_page=8, n_pages=6, seed=2
        )
        assert result.remaps.mean == pytest.approx(3.0)

    def test_aegis_needs_fewer_spares_than_ecp(self):
        """The §4 claim: strong in-chip recovery delays redirection."""
        aegis_bare = remap_page_study(
            aegis_spec(17, 31, 512), spares=0, blocks_per_page=8, n_pages=8, seed=3
        )
        ecp_spared = remap_page_study(
            ecp_spec(6, 512), spares=6, blocks_per_page=8, n_pages=8, seed=3
        )
        assert aegis_bare.lifetime.mean > ecp_spared.lifetime.mean

    def test_faults_grow_with_spares(self):
        small = remap_page_study(
            ecp_spec(2, 512), spares=0, blocks_per_page=8, n_pages=6, seed=4
        )
        large = remap_page_study(
            ecp_spec(2, 512), spares=6, blocks_per_page=8, n_pages=6, seed=4
        )
        assert large.faults.mean > small.faults.mean
