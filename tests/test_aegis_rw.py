"""Tests for the cache-assisted Aegis-rw controller."""

import numpy as np
import pytest

from repro.core.aegis_rw import AegisRwScheme, classify_faults
from repro.core.formations import formation
from repro.errors import UncorrectableError
from repro.pcm.cell import CellArray
from repro.pcm.failcache import DirectMappedFailCache
from repro.schemes.base import roundtrip
from tests.conftest import random_data


def make_scheme(n_bits=512, a=9, b=61, faults=(), knowledge=None):
    cells = CellArray(n_bits)
    for offset, stuck in faults:
        cells.inject_fault(offset, stuck_value=stuck)
    return AegisRwScheme(cells, formation(a, b, n_bits), knowledge=knowledge), cells


class TestClassification:
    def test_classify(self):
        data = np.array([0, 1, 0, 1], dtype=np.uint8)
        wrong, right = classify_faults({0: 1, 1: 1, 3: 0}, data)
        assert sorted(wrong) == [0, 3]
        assert right == [1]


class TestRecovery:
    def test_same_cost_as_basic_aegis(self):
        scheme, _ = make_scheme()
        assert scheme.overhead_bits == 67
        assert scheme.name == "Aegis-rw 9x61"
        assert scheme.hard_ftc >= 11  # rw tolerates at least what Aegis does

    def test_multiple_same_type_faults_share_group(self):
        # two W faults in one slope-0 group: plain Aegis would re-partition,
        # Aegis-rw fixes both with one inversion on slope 0
        scheme, _ = make_scheme(faults=[(0, 1), (1, 1)])
        rect = scheme.formation.rect
        assert rect.group_of(0, 0) == rect.group_of(1, 0)
        data = np.zeros(512, dtype=np.uint8)
        receipt = scheme.write(data)
        assert np.array_equal(scheme.read(), data)
        assert scheme.slope == 0  # no re-partition was needed
        assert receipt.repartitions == 0

    def test_single_pass_write(self, rng):
        # with a perfect cache, every serviced write costs exactly one
        # verification read and no inversion retries
        scheme, cells = make_scheme(faults=[(10, 1), (80, 0), (333, 1)])
        for _ in range(10):
            receipt = scheme.write(random_data(rng, 512))
            assert receipt.verification_reads == 1
            assert receipt.inversion_writes == 0

    def test_hard_ftc_rw(self, rng):
        # 13 faults are guaranteed for 9x61 under rw (floor*ceil+1 = 43 <= 61)
        form = formation(9, 61, 512)
        assert scheme_hard_ftc_holds(rng, form, 13)

    def test_exhaustion_fails(self):
        # W fills column 0, R fills column 1 of a 23x23 grid -> all slopes mixed
        n, a, b = 512, 23, 23
        faults = []
        for row in range(b):
            if a * row < n:
                faults.append((a * row, 1))  # column 0, stuck 1 (W for zeros)
            if 1 + a * row < n:
                faults.append((1 + a * row, 0))  # column 1, stuck 0 (R for zeros)
        scheme, _ = make_scheme(n_bits=n, a=a, b=b, faults=faults)
        with pytest.raises(UncorrectableError):
            scheme.write(np.zeros(n, dtype=np.uint8))


def scheme_hard_ftc_holds(rng, form, count) -> bool:
    for _ in range(10):
        cells = CellArray(form.n_bits)
        for offset in rng.choice(form.n_bits, size=count, replace=False):
            cells.inject_fault(int(offset), stuck_value=int(rng.integers(0, 2)))
        scheme = AegisRwScheme(cells, form)
        for _ in range(5):
            if not roundtrip(scheme, random_data(rng, form.n_bits)):
                return False
    return True


class TestRealFailCache:
    def test_cold_cache_learns_from_verification(self, rng):
        cache = DirectMappedFailCache(capacity=64)
        scheme, cells = make_scheme(faults=[(5, 1), (200, 0)], knowledge=cache)
        data = np.zeros(512, dtype=np.uint8)
        receipt = scheme.write(data)  # cache cold: W fault found by verify read
        assert np.array_equal(scheme.read(), data)
        assert receipt.inversion_writes >= 1  # at least one retry happened
        assert cache.occupancy >= 1

    def test_warm_cache_single_pass(self, rng):
        # unbounded cache: no conflict evictions, so warm-up is deterministic
        cache = DirectMappedFailCache(capacity=None)
        scheme, cells = make_scheme(faults=[(5, 1), (200, 0)], knowledge=cache)
        # warm up: drive writes until both faults have been W at least once
        for _ in range(10):
            scheme.write(random_data(rng, 512))
        receipt = scheme.write(random_data(rng, 512))
        assert receipt.verification_reads == 1
        assert receipt.inversion_writes == 0
