"""Hypothesis state-machine tests: random interleavings of fault injection,
writes, and reads against live controllers, with global invariants checked
after every step.

Where the fuzz tests replay fixed random lives, the state machine lets
hypothesis *search* for a sequence of operations that breaks an invariant,
and shrink it to a minimal reproduction if it ever does.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.aegis import AegisScheme
from repro.core.formations import formation
from repro.errors import UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.safer import SaferScheme

FORM = formation(17, 31, 512)


class AegisLife(RuleBasedStateMachine):
    """One Aegis-protected block living through arbitrary operation orders."""

    def __init__(self):
        super().__init__()
        self.cells = CellArray(512)
        self.scheme = AegisScheme(self.cells, FORM)
        self.last_accepted: np.ndarray | None = None
        self.failed = False

    @rule(offset=st.integers(0, 511))
    def inject_fault(self, offset):
        # wear-out freezes a cell at the value it currently holds (the
        # device model's behaviour); freezing at an arbitrary value would
        # corrupt the stored data at injection time, which no real fault does
        if not self.cells._stuck[offset]:
            self.cells.inject_fault(offset)

    @precondition(lambda self: not self.failed)
    @rule(seed=st.integers(0, 2**16))
    def write(self, seed):
        data = np.random.default_rng(seed).integers(0, 2, 512, dtype=np.uint8)
        try:
            self.scheme.write(data)
        except UncorrectableError:
            self.failed = True
            self.last_accepted = None
        else:
            self.last_accepted = data

    @invariant()
    def accepted_writes_read_back(self):
        if self.last_accepted is not None and not self.failed:
            assert np.array_equal(self.scheme.read(), self.last_accepted)

    @invariant()
    def metadata_wellformed(self):
        assert 0 <= self.scheme.slope < FORM.b_size
        assert set(np.unique(self.scheme.inversion)) <= {0, 1}

    @invariant()
    def failure_matches_retirement(self):
        assert self.scheme.retired == self.failed


class SaferLife(RuleBasedStateMachine):
    """The same machine over SAFER-32 (incremental policy)."""

    def __init__(self):
        super().__init__()
        self.cells = CellArray(512)
        self.scheme = SaferScheme(self.cells, 32, policy="incremental")
        self.last_accepted: np.ndarray | None = None
        self.failed = False

    @rule(offset=st.integers(0, 511))
    def inject_fault(self, offset):
        # wear-out freezes a cell at the value it currently holds (the
        # device model's behaviour); freezing at an arbitrary value would
        # corrupt the stored data at injection time, which no real fault does
        if not self.cells._stuck[offset]:
            self.cells.inject_fault(offset)

    @precondition(lambda self: not self.failed)
    @rule(seed=st.integers(0, 2**16))
    def write(self, seed):
        data = np.random.default_rng(seed).integers(0, 2, 512, dtype=np.uint8)
        try:
            self.scheme.write(data)
        except UncorrectableError:
            self.failed = True
            self.last_accepted = None
        else:
            self.last_accepted = data

    @invariant()
    def accepted_writes_read_back(self):
        if self.last_accepted is not None and not self.failed:
            assert np.array_equal(self.scheme.read(), self.last_accepted)

    @invariant()
    def vector_only_grows(self):
        # recorded as a monotone set by comparing against the high-water mark
        current = set(self.scheme.positions)
        previous = getattr(self, "_seen_positions", set())
        assert previous <= current
        self._seen_positions = current


TestAegisLife = AegisLife.TestCase
TestAegisLife.settings = settings(max_examples=20, stateful_step_count=30, deadline=None)

TestSaferLife = SaferLife.TestCase
TestSaferLife.settings = settings(max_examples=20, stateful_step_count=30, deadline=None)
