"""Tests for the write-cost analysis."""

import pytest

from repro.analysis.writecost import write_cost_study
from repro.core.aegis import AegisScheme
from repro.core.aegis_rw import AegisRwScheme
from repro.core.formations import formation
from repro.errors import UncorrectableError
from repro.schemes.ecp import EcpScheme

FORM = formation(9, 61, 512)


class TestWriteCostStudy:
    def test_faultless_block_costs_one_pass(self):
        summary = write_cost_study(
            "aegis", lambda c: AegisScheme(c, FORM),
            fault_count=0, writes=10, trials=2,
        )
        assert summary.verification_reads == 1.0
        assert summary.inversion_writes == 0.0
        # differential writes program about half the block
        assert 200 < summary.cell_writes < 320

    def test_basic_aegis_pays_inversions_with_faults(self):
        summary = write_cost_study(
            "aegis", lambda c: AegisScheme(c, FORM),
            fault_count=6, writes=20, trials=4,
        )
        assert summary.inversion_writes > 0
        assert summary.verification_reads > 1.0

    def test_rw_variant_stays_single_pass(self):
        summary = write_cost_study(
            "aegis-rw", lambda c: AegisRwScheme(c, FORM),
            fault_count=6, writes=20, trials=4,
        )
        assert summary.verification_reads == 1.0
        assert summary.inversion_writes == 0.0

    def test_rw_cheaper_than_basic_at_same_faults(self):
        basic = write_cost_study(
            "aegis", lambda c: AegisScheme(c, FORM),
            fault_count=8, writes=20, trials=4,
        )
        rw = write_cost_study(
            "aegis-rw", lambda c: AegisRwScheme(c, FORM),
            fault_count=8, writes=20, trials=4,
        )
        assert rw.wear_per_write < basic.wear_per_write

    def test_unserviceable_fault_count_raises(self):
        with pytest.raises(UncorrectableError):
            write_cost_study(
                "ecp1", lambda c: EcpScheme(c, 1),
                fault_count=10, writes=5, trials=3,
            )
