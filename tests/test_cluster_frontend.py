"""The asyncio front-end: wire protocol, QoS queueing, and read-your-writes
through the bulk queue (see ``repro/cluster/frontend.py``).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cluster import (
    ClusterFrontend,
    ClusterService,
    LoopbackClient,
    TenantSpec,
    decode_payload,
    encode_payload,
    loopback_selftest,
)
from repro.cluster.qos import QoSClass
from repro.errors import ConfigurationError
from repro.pcm.lifetime import FixedLifetime
from repro.sim.roster import aegis_spec

BITS = 64


def make_cluster(**kwargs) -> ClusterService:
    kwargs.setdefault("lifetime_model", FixedLifetime(10**9))
    cluster = ClusterService(
        2,
        aegis_spec(5, 13, BITS),
        n_addresses=32,
        spares=2,
        buffer_capacity=4,
        seed=7,
        **kwargs,
    )
    cluster.register_tenant(TenantSpec("vip", QoSClass.INTERACTIVE, 1))
    cluster.register_tenant(TenantSpec("batch", QoSClass.BULK, 1))
    return cluster


def bits_of(fill: int) -> np.ndarray:
    bits = np.zeros(BITS, dtype=np.uint8)
    bits[: fill % (BITS + 1)] = 1
    return bits


async def with_frontend(test):
    """Run ``test(frontend, cluster)`` with a started frontend, always
    stopping it."""
    cluster = make_cluster()
    frontend = ClusterFrontend(cluster, maintenance_interval=0.01)
    await frontend.start()
    try:
        await test(frontend, cluster)
    finally:
        await frontend.stop()


class TestPayloadCodec:
    def test_roundtrip(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, BITS, dtype=np.uint8)
        assert np.array_equal(decode_payload(encode_payload(bits), BITS), bits)

    def test_length_validated(self):
        with pytest.raises(ConfigurationError):
            decode_payload("ff", BITS)


class TestProtocol:
    def test_hello_write_read_stats_quit(self):
        async def scenario(frontend, cluster):
            client = LoopbackClient(frontend.host, frontend.port)
            await client.connect()
            hello = await client.hello("vip")
            assert hello["ok"] and hello["qos"] == "interactive"
            assert hello["block_bits"] == BITS

            payload = bits_of(17)
            response = await client.write(3, payload)
            assert response["ok"] and response["status"] == "serviced"
            read = await client.read(3)
            assert read["ok"] and read["payload"] == encode_payload(payload)

            stats = await client.stats()
            assert stats["ok"]
            assert stats["tenants"]["vip"]["writes"] == 1
            assert len(stats["arrays"]) == 2

            bye = await client.quit()
            assert bye.get("bye")
            await client.close()

        asyncio.run(with_frontend(scenario))

    def test_commands_require_hello(self):
        async def scenario(frontend, cluster):
            client = LoopbackClient(frontend.host, frontend.port)
            await client.connect()
            response = await client.write(0, bits_of(1))
            assert not response["ok"] and response["error"] == "no_tenant"
            await client.close()

        asyncio.run(with_frontend(scenario))

    def test_unknown_tenant_and_command_are_typed(self):
        async def scenario(frontend, cluster):
            client = LoopbackClient(frontend.host, frontend.port)
            await client.connect()
            hello = await client.hello("ghost")
            assert not hello["ok"] and hello["error"] == "unknown_tenant"
            await client.hello("vip")
            response = await client.request(cmd="frobnicate")
            assert not response["ok"] and response["error"] == "unknown_cmd"
            await client.close()

        asyncio.run(with_frontend(scenario))


class TestBulkQueueing:
    def test_queued_write_is_readable_before_it_drains(self):
        """A bulk write that lands in the queue must still satisfy
        read-your-writes (pending forwarding) and eventually be applied."""

        async def scenario(frontend, cluster):
            client = LoopbackClient(frontend.host, frontend.port)
            await client.connect()
            await client.hello("batch")
            queued = []
            written = {}
            for address in range(24):
                payload = bits_of(address + 1)
                response = await client.write(address, payload)
                assert response["ok"], response
                written[address] = payload
                if response["status"] == "queued":
                    queued.append(address)
                    # read-your-writes holds whether the drainer has
                    # already applied the queued write or not
                    read = await client.read(address)
                    assert read["ok"], read
                    assert read["payload"] == encode_payload(payload)
            assert queued, "the bulk watermark never queued anything"
            await frontend.join_queues()
            for address, payload in written.items():
                read = await client.read(address)
                assert read["ok"], read
                assert read["payload"] == encode_payload(payload)
            await client.close()

        asyncio.run(with_frontend(scenario))

    def test_loopback_selftest_is_clean(self):
        cluster = make_cluster()
        summary = asyncio.run(loopback_selftest(cluster, ops_per_tenant=12))
        assert summary["mismatches"] == 0
        assert summary["writes"] > 0
        assert summary["reads"] > 0
