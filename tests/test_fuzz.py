"""Differential fuzzing across all recovery schemes.

The one property no scheme may ever violate: **a write that is accepted
must read back exactly** — silent corruption is worse than failure.  The
fuzzer drives every scheme through randomized fault-injection/write
interleavings (including fault counts far beyond every hard FTC, where
failures are expected and fine) and checks that accepted writes are
faithful, failures are permanent, and the exception carries sane metadata.
"""

import numpy as np
import pytest

from repro.core.aegis import AegisScheme
from repro.core.aegis_dw import AegisDoubleWriteScheme
from repro.core.aegis_p import AegisPointerScheme
from repro.core.aegis_rw import AegisRwScheme
from repro.core.aegis_rw_p import AegisRwPScheme
from repro.core.formations import formation
from repro.errors import BlockRetiredError, UncorrectableError
from repro.pcm.cell import CellArray
from repro.schemes.ecp import EcpScheme
from repro.schemes.hamming import HammingScheme
from repro.schemes.ideal import NoProtectionScheme
from repro.schemes.rdis import RdisScheme
from repro.schemes.safer import SaferCacheScheme, SaferScheme

FORM = formation(17, 31, 512)

ALL_SCHEMES = [
    ("aegis", lambda c: AegisScheme(c, FORM)),
    ("aegis-p", lambda c: AegisPointerScheme(c, FORM, 5)),
    ("aegis-rw", lambda c: AegisRwScheme(c, FORM)),
    ("aegis-rw-p", lambda c: AegisRwPScheme(c, FORM, 5)),
    ("aegis-dw", lambda c: AegisDoubleWriteScheme(c, FORM)),
    ("ecp", lambda c: EcpScheme(c, 6)),
    ("safer-inc", lambda c: SaferScheme(c, 32, policy="incremental")),
    ("safer-exh", lambda c: SaferScheme(c, 32, policy="exhaustive")),
    ("safer-cache", lambda c: SaferCacheScheme(c, 32)),
    ("rdis", lambda c: RdisScheme(c)),
    ("hamming", lambda c: HammingScheme(c)),
    ("none", NoProtectionScheme),
]


def fuzz_one(factory, seed: int, max_faults: int = 40) -> None:
    """One randomized life: interleave fault injections and writes until
    the scheme fails or the fault budget is spent."""
    rng = np.random.default_rng(seed)
    cells = CellArray(512)
    scheme = factory(cells)
    offsets = rng.permutation(512)[:max_faults]
    failed = False
    for offset in offsets:
        cells.inject_fault(int(offset), stuck_value=int(rng.integers(0, 2)))
        for _ in range(int(rng.integers(1, 4))):
            data = rng.integers(0, 2, 512, dtype=np.uint8)
            try:
                scheme.write(data)
            except UncorrectableError as exc:
                failed = True
                assert scheme.retired
                # failure metadata refers to real in-block offsets
                assert all(0 <= o < 512 for o in exc.fault_offsets)
                break
            # the inviolable property: accepted writes read back exactly
            assert np.array_equal(scheme.read(), data), "silent corruption!"
        if failed:
            break
    if failed:
        with pytest.raises(BlockRetiredError):
            scheme.write(np.zeros(512, dtype=np.uint8))


@pytest.mark.parametrize("name,factory", ALL_SCHEMES, ids=[n for n, _ in ALL_SCHEMES])
def test_no_silent_corruption(name, factory):
    for seed in range(6):
        fuzz_one(factory, seed)


@pytest.mark.parametrize(
    "name,factory",
    [(n, f) for n, f in ALL_SCHEMES if n != "none"],
    ids=[n for n, _ in ALL_SCHEMES if n != "none"],
)
def test_heavy_fault_pressure(name, factory):
    """Push every scheme well past its capability: it must fail loudly,
    never corrupt."""
    for seed in (100, 101):
        fuzz_one(factory, seed, max_faults=120)
