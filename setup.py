"""Shim for legacy editable installs (`python setup.py develop`) in
environments without the `wheel` package; metadata lives in pyproject.toml,
but the console script is repeated here because setuptools' beta pyproject
reader does not materialise [project.scripts] under `develop`."""

from setuptools import setup

setup(
    entry_points={"console_scripts": ["aegis-repro = repro.cli:main"]},
)
