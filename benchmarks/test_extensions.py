"""Benchmarks for the extension experiments (paper §3.1 note and §4)."""

from benchmarks.conftest import once, show
from repro.experiments import run_experiment


def test_ext_memblock(benchmark, capsys):
    """The paper's unreported 256 B memory-block configuration."""
    result = once(benchmark, lambda: run_experiment("ext-memblock", n_pages=32, seed=2013))
    show(result, capsys)
    faults = dict(zip(result.column("Scheme"), result.column("Faults/256B block")))
    # "similar trend": same ordering as the 4 KB Figure 5
    assert faults["Aegis 9x61"] > faults["Aegis 17x31"] > faults["SAFER32"]
    assert faults["Aegis 9x61"] > faults["SAFER64"]


def test_ext_payg(benchmark, capsys):
    """PAYG with Aegis as GEC: capacity/overhead sweep."""
    result = once(
        benchmark,
        lambda: run_experiment(
            "ext-payg", n_pages=16, seed=2013, pool_fractions=(0.25, 0.5, 1.0)
        ),
    )
    show(result, capsys)
    payg_rows = [r for r in result.rows if str(r[0]).startswith("PAYG")]
    capacities = [r[2] for r in payg_rows]
    overheads = [r[1] for r in payg_rows]
    assert capacities == sorted(capacities)
    assert overheads == sorted(overheads)
    flat_aegis = next(r for r in result.rows if r[0] == "flat Aegis 17x31")
    # full pool + LEC reaches at least flat-Aegis capacity
    assert capacities[-1] >= 0.95 * flat_aegis[2]


def test_ext_pairing(benchmark, capsys):
    """Dynamic pairing above weak vs strong in-chip recovery."""
    result = once(benchmark, lambda: run_experiment("ext-pairing", n_pages=24, seed=2013))
    show(result, capsys)
    assert all(g >= 0 for g in result.column("Pairing gain"))
    # stronger in-chip recovery pushes the failure window later
    ages = {}
    for row in result.rows:
        scheme, age, without = row[0], float(row[1]), row[2]
        if without < 1.0 and scheme not in ages:
            ages[scheme] = age
    assert ages["Aegis 17x31"] > ages["ECP2"]


def test_ext_freep(benchmark, capsys):
    """§4's FREE-p claim: Aegis substantially delays block redirection."""
    result = once(
        benchmark,
        lambda: run_experiment("ext-freep", n_pages=24, seed=2013,
                               spare_counts=(0, 2, 8)),
    )
    show(result, capsys)
    lifetime = {
        (row[0], row[1]): float(row[2]) for row in result.rows
    }
    # lifetime grows with spares for both schemes
    assert lifetime[("ECP6", 8)] > lifetime[("ECP6", 0)]
    assert lifetime[("Aegis 17x31", 8)] > lifetime[("Aegis 17x31", 0)]
    # bare Aegis outlives ECP6 even when ECP6 gets 8 spare blocks
    assert lifetime[("Aegis 17x31", 0)] > lifetime[("ECP6", 8)]


def test_ext_bsweep(benchmark, capsys):
    """§5's future-work knob: capability and cost vs the prime B."""
    result = once(
        benchmark,
        lambda: run_experiment("ext-bsweep", trials=120, seed=2013,
                               b_values=(23, 31, 61, 113)),
    )
    show(result, capsys)
    soft = [float(v) for v in result.column("Soft FTC (measured)")]
    hard = [int(v) for v in result.column("Hard FTC")]
    bits = [int(v) for v in result.column("Overhead bits")]
    assert soft == sorted(soft)  # capability grows with B...
    assert bits == sorted(bits)  # ...but so does overhead, linearly
    # soft FTC comfortably exceeds hard FTC everywhere
    assert all(s > 1.4 * h for s, h in zip(soft, hard))
    # diminishing space efficiency: faults-per-overhead-bit shrinks
    efficiency = [s / b for s, b in zip(soft, bits)]
    assert efficiency[0] > efficiency[-1]


def test_ext_softftc(benchmark, capsys):
    """Analytic occupancy model vs Monte Carlo block-failure curve."""
    result = once(benchmark, lambda: run_experiment("ext-softftc", trials=500, seed=2013))
    show(result, capsys)
    for row in result.rows:
        if row[1] == "E[soft FTC]":
            continue
        assert abs(float(row[2]) - float(row[3])) < 0.4


def test_ext_fullscale(benchmark, capsys):
    """The batch engine at a sizeable population: Figure 5/9 shapes with
    negligible sampling error and no per-page loop."""
    result = once(benchmark, lambda: run_experiment("ext-fullscale", n_pages=512, seed=2013))
    show(result, capsys)
    faults = dict(zip(result.column("Scheme"), result.column("Faults/page")))
    half = {
        label: float(v)
        for label, v in zip(result.column("Scheme"),
                            result.column("Half lifetime (writes)"))
    }
    assert faults["Aegis 9x61"] > faults["Aegis 17x31"] > faults["Aegis 23x23"]
    assert faults["Aegis 23x23"] > faults["ECP6"]
    assert half["Aegis 9x61"] > half["ECP6"]


def test_ext_frontier(benchmark, capsys):
    """The conclusion's cost-effectiveness claim as a Pareto statement."""
    result = once(benchmark, lambda: run_experiment("ext-frontier", n_pages=24, seed=2013))
    show(result, capsys)
    status = dict(zip(result.column("Scheme"), result.column("Status")))
    aegis = [label for label in status if label.startswith("Aegis")]
    assert aegis and all(status[label] == "frontier" for label in aegis)
    for label in ("SAFER32", "SAFER64", "SAFER128", "ECP4", "ECP5", "ECP6"):
        assert status[label] == "dominated"


def test_ext_intrablock(benchmark, capsys):
    """The §2.1 intra-block wear-leveling side claim."""
    result = once(
        benchmark,
        lambda: run_experiment("ext-intrablock", writes=100, trials=5, seed=2013),
    )
    show(result, capsys)
    rows = {(r[0], r[1]): r for r in result.rows}
    # ECP adds no inversion wear: flat CoV at the noise floor
    ecp_covs = [rows[("ECP12", f)][2] for f in (4, 8, 12)]
    assert max(ecp_covs) - min(ecp_covs) < 0.05
    # Aegis's hottest-cell excess falls as re-partitions spread the wear
    assert rows[("Aegis 9x61", 12)][3] < rows[("Aegis 9x61", 4)][3]


def test_ext_latency(benchmark, capsys):
    """The §2.4 latency arguments under a device timing model."""
    result = once(
        benchmark,
        lambda: run_experiment(
            "ext-latency", fault_counts=(0, 6, 12), writes=20, trials=4, seed=2013
        ),
    )
    show(result, capsys)
    latency = {(r[0], r[1]): float(r[2]) for r in result.rows}
    # the double-write option is ~3x a clean write at any fault count
    assert latency[("Aegis-dw 9x61", 0)] >= 2.9 * latency[("ECP12", 0)]
    # the cache variant's latency is flat; basic Aegis degrades with faults
    assert latency[("Aegis-rw 9x61", 12)] == latency[("Aegis-rw 9x61", 0)]
    assert latency[("Aegis 9x61", 12)] > 1.5 * latency[("Aegis 9x61", 0)]


def test_ext_writecost(benchmark, capsys):
    """Service-cost comparison: the mechanism behind Figure 12."""
    result = once(
        benchmark,
        lambda: run_experiment(
            "ext-writecost", fault_counts=(0, 4, 8, 12), writes=25, trials=6, seed=2013
        ),
    )
    show(result, capsys)
    rows = {(r[0], r[1]): r for r in result.rows}
    # basic Aegis's inversion writes grow with fault count...
    assert rows[("Aegis 9x61", 12)][4] > rows[("Aegis 9x61", 4)][4] > 0
    # ...while Aegis-rw stays single-pass
    assert rows[("Aegis-rw 9x61", 12)][4] == 0.0
    assert rows[("Aegis-rw 9x61", 12)][3] == 1.0
