"""Benchmark: regenerate Figure 13 (variant per-bit contribution)."""

from benchmarks.conftest import once, show
from repro.experiments import run_experiment


def test_fig13(benchmark, capsys):
    result = once(benchmark, lambda: run_experiment("fig13", n_pages=16, seed=2013))
    show(result, capsys)
    per_bit = dict(
        zip(result.column("Scheme"), result.column("Per-bit contribution"))
    )
    # §3.3: the variants use overhead space more efficiently; in particular
    # Aegis-rw-p's per-bit contribution exceeds plain Aegis's per formation
    for a, b, p in ((23, 23, 4), (17, 31, 5), (9, 61, 9), (8, 71, 9)):
        assert (
            per_bit[f"Aegis-rw-p {a}x{b} (p={p})"] > per_bit[f"Aegis {a}x{b}"]
        ), f"{a}x{b}"
