"""Benchmark: regenerate Figure 5 (recoverable faults per 4 KB page).

Shape assertions encode the paper's qualitative claims; run with more
pages (see EXPERIMENTS.md) for tighter numbers.
"""

import pytest

from benchmarks.conftest import once, show
from repro.experiments import run_experiment

SCALE = dict(n_pages=16, seed=2013)


@pytest.mark.parametrize("block_bits", [512, 256])
def test_fig5(benchmark, capsys, block_bits):
    result = once(
        benchmark, lambda: run_experiment("fig5", block_bits=block_bits, **SCALE)
    )
    show(result, capsys)
    faults = dict(zip(result.column("Scheme"), result.column("Faults/page")))
    bits = dict(zip(result.column("Scheme"), result.column("Overhead bits")))
    if block_bits == 512:
        # §3.2: Aegis 9x61 tolerates far more faults than SAFER64 at 42%
        # fewer overhead bits than SAFER128
        assert faults["Aegis 9x61"] > 1.5 * faults["SAFER64"]
        assert bits["Aegis 9x61"] < bits["SAFER64"]
        # Aegis 9x61 above RDIS-3 with half the overhead
        assert faults["Aegis 9x61"] > faults["RDIS-3"]
        assert bits["Aegis 9x61"] < bits["RDIS-3"]
    else:
        # §3.2: Aegis 12x23 (28 bits) beats ECP6 (55 bits)
        assert faults["Aegis 12x23"] > faults["ECP6"]
        assert bits["Aegis 12x23"] == 28
        assert bits["ECP6"] == 55
