"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure at a reduced Monte Carlo
scale (so the whole suite runs in minutes) and prints the regenerated rows
— the numbers EXPERIMENTS.md records come from these benches run at full
scale via the CLI.
"""

from __future__ import annotations

import pytest

from repro.experiments import clear_study_cache


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_study_cache()
    yield


def show(result, capsys) -> None:
    """Print a regenerated artefact outside pytest's capture."""
    with capsys.disabled():
        print()
        print(result.render())


def once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer (the
    regenerations are seconds-long Monte Carlo runs, not microbenchmarks)."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
