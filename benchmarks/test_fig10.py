"""Benchmark: regenerate Figure 10 (Aegis-rw-p lifetime vs pointer count)."""

from benchmarks.conftest import once, show
from repro.experiments import run_experiment

POINTERS = (1, 2, 3, 4, 5, 6, 8, 10, 12)


def test_fig10(benchmark, capsys):
    result = once(
        benchmark,
        lambda: run_experiment(
            "fig10", trials=60, pointer_counts=POINTERS, seed=2013
        ),
    )
    show(result, capsys)
    columns = {h: [float(row[i + 1]) for row in result.rows]
               for i, h in enumerate(result.headers[1:])}
    for name, lifetimes in columns.items():
        # rise-then-plateau: the p=1 point is well below the final point,
        # and the last two points are within a few percent of each other
        assert lifetimes[0] < 0.95 * lifetimes[-1], name
        assert abs(lifetimes[-1] - lifetimes[-2]) < 0.1 * lifetimes[-1], name
    # the plateau grows with B (paper: ~24% from B=23 to B=71)
    assert columns["8x71"][-1] > 1.05 * columns["23x23"][-1]
