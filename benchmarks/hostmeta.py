"""Host metadata shared by the benchmark regression gates.

Every benchmark record stamps ``host_cpus`` — the core count its numbers
were measured on.  Serial throughput and engine speedups travel across
hosts reasonably well, but **parallel-ladder speedups do not**: a 1-CPU
host faithfully records 1.0x process-pool speedups, and comparing that
ladder against a 4-CPU run (or vice versa) manufactures a regression or
hides one.  The ``--check`` paths of ``bench_sim.py``,
``bench_service.py``, and ``bench_cluster.py`` therefore route every
cross-record parallel comparison through :func:`parallel_ladder_guard`
and refuse — with an explanatory note — instead of comparing ladders
recorded on differing core counts.
"""

from __future__ import annotations

import os


def host_cpus() -> int:
    """CPU count of the current host (never ``None``)."""
    return os.cpu_count() or 1


def parallel_ladder_guard(previous: dict, current: dict) -> str | None:
    """``None`` when the two records' parallel ladders are comparable.

    Otherwise an explanatory message: the recorded file predates
    ``host_cpus`` stamping, or was measured on a host with a different
    core count.  Callers print the message and skip every cross-record
    parallel-speedup comparison; same-host comparisons (serial
    throughput, engine ladders) proceed regardless."""
    old = previous.get("host_cpus")
    new = current.get("host_cpus") or host_cpus()
    if old is None:
        return (
            "recorded file carries no host_cpus; refusing to compare "
            f"parallel ladders against the current {new}-CPU host"
        )
    if old != new:
        return (
            f"recorded on a {old}-CPU host but measured on {new} CPUs; "
            "refusing to compare parallel ladders across differing core "
            "counts"
        )
    return None
