"""Ablation benchmarks for the design and modelling choices DESIGN.md calls out.

1. SAFER re-partition policy: faithful grow-only vs generous exhaustive —
   the paper's reported SAFER sits between the two; the headline Aegis
   advantage must hold even against the generous bound.
2. Static vs dynamic failure criterion for plain Aegis: the static
   "all faults separable" cut is conservative; the dynamic closure never
   dies earlier.
3. Sampled-pattern count: the data-dependent checkers must be converged at
   the default sample budget.
4. Inversion-wear model: turning the amplification off must not change the
   fault-count story (it only shifts lifetimes).
5. Lifetime distribution: the scheme ordering is robust to swapping the
   paper's normal endurance model for a log-normal one.
"""

import numpy as np

from benchmarks.conftest import once
from repro.pcm.lifetime import LogNormalLifetime
from repro.sim.block_sim import faults_at_death
from repro.sim.page_sim import run_page_study, simulate_page
from repro.sim.rng import rng_for
from repro.sim.roster import (
    aegis_dynamic_spec,
    aegis_spec,
    rdis_spec,
    safer_spec,
)
from repro.util.tables import render_table


def test_safer_policy_ablation(benchmark, capsys):
    def run():
        rows = []
        for n in (32, 64):
            inc = run_page_study(safer_spec(n, 512), n_pages=12, seed=1)
            exh = run_page_study(
                safer_spec(n, 512, policy="exhaustive"), n_pages=12, seed=1
            )
            aegis = run_page_study(aegis_spec(9, 61, 512), n_pages=12, seed=1)
            rows.append(
                (f"SAFER{n}", round(inc.faults.mean, 1), round(exh.faults.mean, 1),
                 round(aegis.faults.mean, 1))
            )
        return rows

    rows = once(benchmark, run)
    with capsys.disabled():
        print()
        print(render_table(
            ("Scheme", "Incremental (faithful)", "Exhaustive (generous)", "Aegis 9x61"),
            rows,
            title="## Ablation: SAFER re-partition policy",
        ))
    for _, inc, exh, aegis in rows:
        assert inc <= exh  # the faithful policy is never stronger
        assert aegis > exh  # Aegis 9x61 wins even against generous SAFER


def test_static_vs_dynamic_aegis(benchmark, capsys):
    def run():
        static = [
            faults_at_death(aegis_spec(23, 23, 512), rng_for(3, t)) for t in range(60)
        ]
        dynamic = [
            faults_at_death(aegis_dynamic_spec(23, 23, 512), rng_for(3, t))
            for t in range(60)
        ]
        return float(np.mean(static)), float(np.mean(dynamic))

    static_mean, dynamic_mean = once(benchmark, run)
    with capsys.disabled():
        print(f"\n## Ablation: Aegis 23x23 faults-at-death, static={static_mean:.1f} "
              f"dynamic={dynamic_mean:.1f} (dynamic closure is never earlier)")
    # the static criterion is conservative: it kills at or before the
    # sampled dynamic closure on average
    assert dynamic_mean >= static_mean * 0.98


def test_sample_count_convergence(benchmark, capsys):
    def run():
        means = {}
        for samples in (32, 128, 512):
            study = run_page_study(
                rdis_spec(512, samples=samples), n_pages=8, seed=4
            )
            means[samples] = study.faults.mean
        return means

    means = once(benchmark, run)
    with capsys.disabled():
        print(f"\n## Ablation: RDIS-3 faults/page vs pattern samples: {means}")
    # converged: quadrupling the sample budget moves the estimate < 10%
    assert abs(means[512] - means[128]) < 0.1 * means[128]


def test_inversion_wear_only_shifts_lifetime(benchmark, capsys):
    def run():
        spec = aegis_spec(17, 31, 512)
        with_wear = [
            simulate_page(spec, 16, np.random.default_rng(p), inversion_wear_rate=0.25)
            for p in range(8)
        ]
        without = [
            simulate_page(spec, 16, np.random.default_rng(p), inversion_wear_rate=0.0)
            for p in range(8)
        ]
        return (
            float(np.mean([r.faults_recovered for r in with_wear])),
            float(np.mean([r.faults_recovered for r in without])),
            float(np.mean([r.lifetime_writes for r in with_wear])),
            float(np.mean([r.lifetime_writes for r in without])),
        )

    f_wear, f_plain, t_wear, t_plain = once(benchmark, run)
    with capsys.disabled():
        print(f"\n## Ablation: inversion wear — faults {f_wear:.0f} vs {f_plain:.0f}, "
              f"lifetime {t_wear:.3g} vs {t_plain:.3g}")
    assert t_wear < t_plain  # amplified wear shortens lifetime...
    assert abs(f_wear - f_plain) < 0.25 * f_plain  # ...but not the fault story


def test_wear_leveling_under_skew(benchmark, capsys):
    """§3.1 assumes perfect wear leveling, citing Start-Gap.  Under a 90/10
    hot/cold workload, Start-Gap must recover most of the half-lifetime gap
    between no leveling and the perfect assumption."""
    from repro.pcm.device import PCMDevice
    from repro.pcm.lifetime import FixedLifetime
    from repro.pcm.wear import (
        NoWearLeveling,
        PerfectWearLeveling,
        SecurityRefreshWearLeveling,
        StartGapWearLeveling,
    )
    from repro.pcm.workload import HotColdWorkload
    from repro.schemes.ideal import NoProtectionScheme

    def half_life(policy_factory, n_pages=16):
        values = []
        for seed in range(3):
            device = PCMDevice(
                n_pages, 64, 1, NoProtectionScheme,
                lifetime_model=FixedLifetime(60),
                wear_leveling=policy_factory(),
                workload=HotColdWorkload(hot_fraction=0.25, hot_share=0.9),
                rng=np.random.default_rng(seed),
            )
            device.run_until_dead(max_writes=200_000)
            values.append(device.half_lifetime())
        return float(np.mean(values))

    def run():
        return {
            "none": half_life(NoWearLeveling),
            "security-refresh": half_life(
                lambda: SecurityRefreshWearLeveling(16, refresh_interval=8)
            ),
            "start-gap": half_life(lambda: StartGapWearLeveling(16, gap_interval=4)),
            "perfect": half_life(PerfectWearLeveling),
        }

    results = once(benchmark, run)
    with capsys.disabled():
        print(f"\n## Ablation: half lifetime under 90/10 skew — {results}")
    assert results["none"] < results["security-refresh"]
    assert results["none"] < results["start-gap"] <= results["perfect"] * 1.05
    recovered = (results["start-gap"] - results["none"]) / (
        results["perfect"] - results["none"]
    )
    assert recovered > 0.5  # Start-Gap closes most of the gap


def test_spatial_correlation_assumption(benchmark, capsys):
    """§3.1 assumes no correlation between neighbouring cells.  With
    block-sized weak clusters, faults concentrate inside individual data
    blocks — the regime partition schemes handle worst — so fault capacity
    must drop for every scheme while the Aegis-over-SAFER ordering holds."""
    from repro.pcm.lifetime import CorrelatedLifetime

    def run():
        out = {}
        for name, model in (
            ("independent", None),
            ("clustered", CorrelatedLifetime(cluster_size=512, cluster_cov=0.5)),
        ):
            means = {}
            for spec in (safer_spec(64, 512), aegis_spec(9, 61, 512)):
                faults = [
                    simulate_page(
                        spec, 16, np.random.default_rng(p), lifetime_model=model
                    ).faults_recovered
                    for p in range(8)
                ]
                means[spec.label] = float(np.mean(faults))
            out[name] = means
        return out

    results = once(benchmark, run)
    with capsys.disabled():
        print(f"\n## Ablation: spatial correlation — {results}")
    for means in results.values():
        assert means["Aegis 9x61"] > means["SAFER64"]  # ordering robust
    # clustering concentrates faults per block: capacity drops
    assert (
        results["clustered"]["Aegis 9x61"] < results["independent"]["Aegis 9x61"]
    )


def test_lifetime_distribution_robustness(benchmark, capsys):
    def run():
        ordering = {}
        for name, model in (
            ("normal", None),
            ("lognormal", LogNormalLifetime()),
        ):
            means = {}
            for spec in (safer_spec(64, 512), aegis_spec(9, 61, 512)):
                faults = [
                    simulate_page(
                        spec, 16, np.random.default_rng(p), lifetime_model=model
                    ).faults_recovered
                    for p in range(6)
                ]
                means[spec.label] = float(np.mean(faults))
            ordering[name] = means
        return ordering

    ordering = once(benchmark, run)
    with capsys.disabled():
        print(f"\n## Ablation: endurance distribution — {ordering}")
    for means in ordering.values():
        assert means["Aegis 9x61"] > means["SAFER64"]
