"""Benchmark: regenerate Figure 8 (block failure probability vs faults)."""

from benchmarks.conftest import once, show
from repro.experiments import run_experiment


def test_fig8(benchmark, capsys):
    result = once(
        benchmark,
        lambda: run_experiment("fig8", trials=600, max_faults=36, seed=2013),
    )
    show(result, capsys)
    by_faults = {row[0]: dict(zip(result.headers[1:], row[1:])) for row in result.rows}
    # hard-FTC zeros
    assert by_faults[6]["ECP6"] == 0.0
    assert by_faults[8]["Aegis 17x31"] == 0.0
    # ECP's vertical rise
    assert by_faults[8]["ECP6"] == 1.0
    # §3.2: Aegis 9x61 (67 bits) below SAFER64 (91) and SAFER128 (159)
    for f in (14, 18, 22):
        assert by_faults[f]["Aegis 9x61"] <= by_faults[f]["SAFER64"]
        assert by_faults[f]["Aegis 9x61"] <= by_faults[f]["SAFER128"]
    # §3.2: cache-assisted SAFER128 wins deep into the fault range
    assert by_faults[30]["SAFER128-cache"] <= by_faults[30]["Aegis 9x61"]
