"""Benchmark: regenerate Table 1 (closed-form overhead costs)."""

from benchmarks.conftest import once, show
from repro.experiments import run_experiment

#: the paper's published rows, asserted verbatim
PAPER_AEGIS_ROW = [23, 24, 25, 26, 27, 27, 28, 34, 43, 53]


def test_table1(benchmark, capsys):
    result = once(benchmark, lambda: run_experiment("table1"))
    show(result, capsys)
    rows = {row[0]: list(row[1:]) for row in result.rows}
    assert rows["Aegis"] == PAPER_AEGIS_ROW
    assert rows["ECP"][5] == 61
    assert rows["SAFER"][6] == 91
