"""Throughput + determinism benchmark for the memory-array service layer.

Drives the ``serve-bench`` load generator (:func:`repro.service.run_load`)
at a ladder of worker counts on a representative scheme roster, asserts
that every worker count merges to the same final telemetry snapshot *and*
the same sampled trace span trees (the observability layer's determinism
contract), and records ops/second to ``BENCH_service.json`` so the serving
path's performance trajectory is tracked from PR to PR.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_service            # measure + write
    PYTHONPATH=src python -m benchmarks.bench_service --check    # also fail on
                                                                 # >2x regression
    PYTHONPATH=src python -m benchmarks.bench_service --ops 4000 --workers 1 2

The regression check compares the new *serial* ops/second of each
benchmarked spec against the recorded one and exits non-zero when it has
fallen by more than ``--regression-factor`` (default 2.0) — loose enough to
ride out machine-to-machine noise in CI, tight enough to catch a hot-path
regression in the write pipeline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.pcm.lifetime import NormalLifetime
from repro.service import run_load
from repro.sim.roster import SchemeSpec, aegis_spec, ecp_spec, safer_spec

#: default result file, at the repository root
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: representative roster: the Figure 5 headliner, a replayed-vector
#: scheme, and the cheapest pointer scheme
BENCH_SPECS = (
    ("aegis-9x61", lambda: aegis_spec(9, 61, 512)),
    ("safer64", lambda: safer_spec(64, 512)),
    ("ecp6", lambda: ecp_spec(6, 512)),
)


#: trace sampling used for the determinism leg of the ladder — sparse
#: enough to stay cheap, dense enough to keep span trees to compare
TRACE_SAMPLE = 50


def _load(
    spec: SchemeSpec, ops: int, shards: int, workers: int
) -> tuple[dict, dict, float]:
    start = time.perf_counter()
    report = run_load(
        spec,
        ops=ops,
        seed=2013,
        shards=shards,
        workers=workers,
        n_addresses=32,
        spares=8,
        workload="zipf",
        # endurance low enough that remaps/retirements happen in-run, so the
        # benchmark exercises the full degradation path, not just happy writes
        lifetime_model=NormalLifetime(mean_lifetime=45.0),
        trace_sample=TRACE_SAMPLE,
    )
    elapsed = time.perf_counter() - start
    tracer = report.telemetry.tracer
    # full span trees, not just the tally snapshot — the strongest
    # worker-count-invariance statement the tracer can make
    trace = {
        "snapshot": tracer.snapshot(),
        "roots": [root.to_dict() for root in tracer.roots],
    }
    return report.snapshot, trace, elapsed


def run_benchmark(
    *,
    ops: int = 6000,
    shards: int = 4,
    worker_ladder: tuple[int, ...] = (1, 2, 4),
) -> dict:
    """Measure serving throughput and verify determinism; return the record."""
    records = []
    for key, make_spec in BENCH_SPECS:
        spec = make_spec()
        runs = []
        reference: dict | None = None
        reference_trace: dict | None = None
        deterministic = True
        trace_deterministic = True
        integrity_ok = True
        for workers in worker_ladder:
            snapshot, trace, elapsed = _load(spec, ops, shards, workers)
            if reference is None:
                reference, reference_trace = snapshot, trace
            else:
                if snapshot != reference:
                    deterministic = False
                if trace != reference_trace:
                    trace_deterministic = False
            if snapshot["counters"].get("integrity_failures", 0):
                integrity_ok = False
            runs.append(
                {
                    "workers": workers,
                    "seconds": round(elapsed, 4),
                    "ops_per_second": round(ops / elapsed, 3),
                }
            )
        serial = runs[0]["ops_per_second"]
        best = max(runs, key=lambda r: r["ops_per_second"])
        assert reference is not None
        records.append(
            {
                "spec": key,
                "ops": ops,
                "shards": shards,
                "runs": runs,
                "serial_ops_per_second": serial,
                "best_speedup": round(best["ops_per_second"] / serial, 3),
                "best_speedup_workers": best["workers"],
                "deterministic": deterministic,
                "trace_deterministic": trace_deterministic,
                "integrity_ok": integrity_ok,
                "remaps": reference["counters"].get("remaps", 0),
                "capacity_fraction": reference["capacity"]["capacity_fraction"],
            }
        )
    return {
        "benchmark": "memory-array service load generator",
        "host_cpus": os.cpu_count(),
        "python": platform.python_version(),
        "worker_ladder": list(worker_ladder),
        "specs": records,
    }


def check_regression(previous: dict, current: dict, factor: float) -> list[str]:
    """Per-spec serial-throughput regression messages (empty = healthy)."""
    failures = []
    old_by_spec = {r["spec"]: r for r in previous.get("specs", ())}
    for record in current["specs"]:
        old = old_by_spec.get(record["spec"])
        if old is None:
            continue
        old_rate = old.get("serial_ops_per_second", 0.0)
        new_rate = record["serial_ops_per_second"]
        if old_rate > 0 and new_rate * factor < old_rate:
            failures.append(
                f"{record['spec']}: serial throughput fell from "
                f"{old_rate:.2f} to {new_rate:.2f} ops/s "
                f"(> {factor:.1f}x regression)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=6000)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when serial throughput regressed vs the recorded file",
    )
    parser.add_argument("--regression-factor", type=float, default=2.0)
    args = parser.parse_args(argv)

    previous = None
    if args.output.exists():
        previous = json.loads(args.output.read_text())

    current = run_benchmark(
        ops=args.ops,
        shards=args.shards,
        worker_ladder=tuple(args.workers),
    )

    status = 0
    for record in current["specs"]:
        flags = []
        if not record["deterministic"]:
            flags.append("NON-DETERMINISTIC")
            status = 1
        if not record["trace_deterministic"]:
            flags.append("NON-DETERMINISTIC TRACE")
            status = 1
        if not record["integrity_ok"]:
            flags.append("INTEGRITY FAILURES")
            status = 1
        flag = " ".join(flags) if flags else "ok"
        print(
            f"{record['spec']:12s} serial {record['serial_ops_per_second']:9.1f} ops/s  "
            f"best {record['best_speedup']:.2f}x @ {record['best_speedup_workers']} workers  "
            f"remaps {record['remaps']:3d}  capacity {record['capacity_fraction']:.3f}  "
            f"[{flag}]"
        )
    if args.check and previous is not None:
        failures = check_regression(previous, current, args.regression_factor)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            status = 1
    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return status


if __name__ == "__main__":
    sys.exit(main())
