"""Throughput + determinism benchmark for the memory-array service layer.

Three ladders per representative spec, recorded to ``BENCH_service.json``
so the serving path's performance trajectory is tracked from PR to PR:

* a **drain ladder** — the vectorized write-drain pipeline
  (:func:`repro.service.kernels.drain_vector`) vs the scalar per-row
  pipeline, timing only :meth:`ServiceController.flush` over warm,
  healthy blocks; this is the service layer's kernel contract, gated the
  same way ``bench_sim.py`` gates its 3x kernel floor;
* an **engine ladder** — the full ``run_load`` generator at ``workers=1``
  with ``engine="scalar"`` vs ``engine="vector"``, asserting the two
  engines produce byte-identical telemetry snapshots *and* sampled trace
  span trees;
* a **worker ladder** — ``engine="auto"`` fanned over a process pool,
  asserting every worker count merges to the same snapshot and trace.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_service            # measure + write
    PYTHONPATH=src python -m benchmarks.bench_service --check    # also gate
    PYTHONPATH=src python -m benchmarks.bench_service --ops 4000 --workers 1 2

``--check`` enforces four gates:

* serial (auto-engine) ops/second per spec must not have fallen by more
  than ``--regression-factor`` (default 2.0) vs the recorded file;
* the drain-ladder speedup on ``aegis-9x61`` must reach
  ``--vector-floor`` (default 5.0) — the vectorized data plane's perf
  contract;
* per-flush time-series sampling on ``aegis-9x61`` must cost at most
  ``--sampling-overhead-max`` (default 0.05) of the recorder-on drain
  time — observability must stay cheap on the hot path;
* when the host has more than one CPU, the best parallel speedup per
  spec must reach ``--parallel-floor``; on single-CPU hosts this
  assertion is skipped (a process pool cannot beat serial there).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from benchmarks.hostmeta import host_cpus, parallel_ladder_guard
from repro.obs import TimeSeriesRecorder
from repro.pcm.failcache import DirectMappedFailCache, SequentialBlockKeys
from repro.pcm.lifetime import FixedLifetime, NormalLifetime
from repro.service import MemoryArray, ServiceController, run_load
from repro.sim.rng import rng_for
from repro.sim.roster import SchemeSpec, aegis_spec, ecp_spec, safer_spec

#: default result file, at the repository root
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: representative roster: the Figure 5 headliner, a replayed-vector
#: scheme, and the cheapest pointer scheme
BENCH_SPECS = (
    ("aegis-9x61", lambda: aegis_spec(9, 61, 512)),
    ("safer64", lambda: safer_spec(64, 512)),
    ("ecp6", lambda: ecp_spec(6, 512)),
)

#: the spec whose drain-ladder speedup --check gates on
GATED_SPEC = "aegis-9x61"

#: trace sampling used for the determinism legs — sparse enough to stay
#: cheap, dense enough to keep span trees to compare
TRACE_SAMPLE = 50

#: write-buffer capacity for the load ladders — shallow on purpose: at the
#: recorded baseline's depth the zipf stream still wears blocks out
#: in-run, so the ladder keeps exercising remaps and retirements
BUFFER_CAPACITY = 8

#: drain-ladder shape: distinct addresses per drain over warm blocks,
#: deep enough that a batch amortizes its per-drain fixed costs
DRAIN_CAPACITY = 128
DRAIN_ADDRESSES = 256


def _load(
    spec: SchemeSpec, ops: int, shards: int, workers: int, engine: str
) -> tuple[dict, dict, float]:
    start = time.perf_counter()
    report = run_load(
        spec,
        ops=ops,
        seed=2013,
        shards=shards,
        workers=workers,
        n_addresses=32,
        spares=8,
        workload="zipf",
        # endurance low enough that remaps/retirements happen in-run, so the
        # benchmark exercises the full degradation path, not just happy writes
        lifetime_model=NormalLifetime(mean_lifetime=45.0),
        buffer_capacity=BUFFER_CAPACITY,
        engine=engine,
        trace_sample=TRACE_SAMPLE,
    )
    elapsed = time.perf_counter() - start
    tracer = report.telemetry.tracer
    # full span trees, not just the tally snapshot — the strongest
    # invariance statement the tracer can make across engines and workers
    trace = {
        "snapshot": tracer.snapshot(),
        "roots": [root.to_dict() for root in tracer.roots],
    }
    return report.snapshot, trace, elapsed


def _drain_rate(
    spec: SchemeSpec, engine: str, rounds: int, series_bucket: int = 0
) -> tuple[float, dict, float]:
    """Writes/second through :meth:`ServiceController.flush` alone.

    Warm, healthy blocks (huge fixed endurance, every address touched
    once up front) so the measurement isolates the drain pipeline — the
    part the vector engine batches — from first-touch allocation and
    wear-out escalations, which both engines service through the same
    scalar rows.  With ``series_bucket > 0`` a
    :class:`~repro.obs.TimeSeriesRecorder` samples the metrics registry
    after every flush, inside the timed region, and the time spent inside
    ``sample()`` is accounted separately — the returned overhead fraction
    is ``sample_seconds / drain_seconds``, a direct measurement immune to
    run-to-run wall-clock noise.  Returns the rate, the final metrics
    snapshot (so the caller can assert engine/recorder equivalence), and
    the sampling-overhead fraction (0.0 when no recorder is attached).
    """
    rng = rng_for(2013, 0, 41)
    array = MemoryArray(
        DRAIN_ADDRESSES,
        spec.n_bits,
        spec.make_controller,
        spares=8,
        lifetime_model=FixedLifetime(10**9),
        fail_cache=DirectMappedFailCache(1024, key_of=SequentialBlockKeys()),
        rng=rng,
        engine=engine,
    )
    controller = ServiceController(array, buffer_capacity=DRAIN_CAPACITY)
    recorder = None
    if series_bucket:
        recorder = TimeSeriesRecorder(
            array.telemetry.metrics,
            bucket_width=series_bucket,
            capacity=4096,
        )
    warm = rng.integers(0, 2, (DRAIN_ADDRESSES, spec.n_bits), dtype=np.uint8)
    for address in range(DRAIN_ADDRESSES):
        controller.write(address, warm[address])
        controller.flush()
    payloads = rng.integers(
        0, 2, (rounds, DRAIN_CAPACITY, spec.n_bits), dtype=np.uint8
    )
    addresses = rng_for(2013, 1, 41).permutation(DRAIN_ADDRESSES)[:DRAIN_CAPACITY]
    buffer = controller.buffer
    drained = 0
    drain_seconds = 0.0
    sample_seconds = 0.0
    for round_index in range(rounds):
        for slot in range(DRAIN_CAPACITY):
            buffer.put(int(addresses[slot]), payloads[round_index, slot])
        start = time.perf_counter()
        drained += controller.flush()
        if recorder is not None:
            sampled = time.perf_counter()
            recorder.sample(array.op_clock)
            sample_seconds += time.perf_counter() - sampled
        drain_seconds += time.perf_counter() - start
    overhead = sample_seconds / drain_seconds if drain_seconds else 0.0
    return drained / drain_seconds, array.telemetry.metrics.snapshot(), overhead


def _drain_ladder(spec: SchemeSpec, rounds: int) -> dict:
    scalar_rate, scalar_metrics, _ = _drain_rate(spec, "scalar", rounds)
    vector_rate, vector_metrics, _ = _drain_rate(spec, "vector", rounds)
    # recorder-on leg: same vector pipeline with per-flush time-series
    # sampling; the recorder must not perturb the metrics it observes
    sampled_rate, sampled_metrics, overhead = _drain_rate(
        spec, "vector", rounds, series_bucket=DRAIN_CAPACITY
    )
    return {
        "rounds": rounds,
        "capacity": DRAIN_CAPACITY,
        "scalar_writes_per_second": round(scalar_rate, 1),
        "vector_writes_per_second": round(vector_rate, 1),
        "sampled_writes_per_second": round(sampled_rate, 1),
        "sampling_overhead_fraction": round(overhead, 4),
        "speedup": round(vector_rate / scalar_rate, 3),
        "identical": scalar_metrics == vector_metrics
        and sampled_metrics == vector_metrics,
    }


def run_benchmark(
    *,
    ops: int = 6000,
    shards: int = 4,
    worker_ladder: tuple[int, ...] = (1, 2, 4),
    drain_rounds: int = 200,
) -> dict:
    """Measure all three ladders and verify determinism; return the record."""
    records = []
    for key, make_spec in BENCH_SPECS:
        spec = make_spec()
        # engine ladder at workers=1: scalar vs vector over the full
        # generator, the end-to-end statement of engine equivalence
        scalar_snapshot, scalar_trace, scalar_seconds = _load(
            spec, ops, shards, 1, "scalar"
        )
        vector_snapshot, vector_trace, vector_seconds = _load(
            spec, ops, shards, 1, "vector"
        )
        engines_identical = (
            vector_snapshot == scalar_snapshot and vector_trace == scalar_trace
        )
        engine_runs = [
            {
                "engine": "scalar",
                "workers": 1,
                "seconds": round(scalar_seconds, 4),
                "ops_per_second": round(ops / scalar_seconds, 3),
            },
            {
                "engine": "vector",
                "workers": 1,
                "seconds": round(vector_seconds, 4),
                "ops_per_second": round(ops / vector_seconds, 3),
            },
        ]

        # worker ladder with the default engine selection
        runs = []
        deterministic = True
        trace_deterministic = True
        integrity_ok = True
        for workers in worker_ladder:
            snapshot, trace, elapsed = _load(spec, ops, shards, workers, "auto")
            if snapshot != scalar_snapshot:
                deterministic = False
            if trace != scalar_trace:
                trace_deterministic = False
            if snapshot["counters"].get("integrity_failures", 0):
                integrity_ok = False
            runs.append(
                {
                    "workers": workers,
                    "engine": "auto",
                    "seconds": round(elapsed, 4),
                    "ops_per_second": round(ops / elapsed, 3),
                }
            )
        serial = runs[0]["ops_per_second"]
        best = max(runs, key=lambda r: r["ops_per_second"])
        records.append(
            {
                "spec": key,
                "ops": ops,
                "shards": shards,
                "engine_runs": engine_runs,
                "engine_speedup": round(scalar_seconds / vector_seconds, 3),
                "engines_identical": engines_identical,
                "drain": _drain_ladder(spec, drain_rounds),
                "runs": runs,
                "serial_ops_per_second": serial,
                "best_speedup": round(best["ops_per_second"] / serial, 3),
                "best_speedup_workers": best["workers"],
                "deterministic": deterministic,
                "trace_deterministic": trace_deterministic,
                "integrity_ok": integrity_ok,
                "remaps": scalar_snapshot["counters"].get("remaps", 0),
                "capacity_fraction": scalar_snapshot["capacity"][
                    "capacity_fraction"
                ],
            }
        )
    return {
        "benchmark": "memory-array service load generator + drain kernels",
        "host_cpus": host_cpus(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "worker_ladder": list(worker_ladder),
        "buffer_capacity": BUFFER_CAPACITY,
        "specs": records,
    }


def check_regression(previous: dict, current: dict, factor: float) -> list[str]:
    """Per-spec throughput/speedup regression messages (empty = healthy).

    Serial throughput is always compared.  Parallel-ladder speedups are
    compared only when both records were measured on hosts with the same
    core count (:func:`benchmarks.hostmeta.parallel_ladder_guard`);
    otherwise the comparison is refused, not silently made."""
    failures = []
    cpus = current.get("host_cpus") or host_cpus()
    ladders_comparable = parallel_ladder_guard(previous, current) is None
    old_by_spec = {r["spec"]: r for r in previous.get("specs", ())}
    for record in current["specs"]:
        old = old_by_spec.get(record["spec"])
        if old is None:
            continue
        old_rate = old.get("serial_ops_per_second", 0.0)
        new_rate = record["serial_ops_per_second"]
        if old_rate > 0 and new_rate * factor < old_rate:
            failures.append(
                f"{record['spec']}: serial throughput fell from "
                f"{old_rate:.2f} to {new_rate:.2f} ops/s "
                f"(> {factor:.1f}x regression, host_cpus={cpus})"
            )
        old_speedup = old.get("best_speedup", 0.0)
        new_speedup = record["best_speedup"]
        if (
            ladders_comparable
            and cpus > 1
            and old_speedup > 1.0
            and new_speedup * factor < old_speedup
        ):
            failures.append(
                f"{record['spec']}: best parallel speedup fell from "
                f"{old_speedup:.2f}x to {new_speedup:.2f}x "
                f"(> {factor:.1f}x regression, host_cpus={cpus})"
            )
    return failures


def check_gates(
    current: dict,
    *,
    vector_floor: float,
    parallel_floor: float,
    sampling_overhead_max: float = 0.05,
) -> list[str]:
    """Drain-speedup and parallel-speedup gate messages (empty = healthy).

    The parallel gate is skipped entirely on single-CPU hosts — a process
    pool cannot beat the serial path without a second core.  The drain
    floor always applies: it compares two serial runs on the same host.
    The sampling-overhead gate bounds the time-series recorder's cost on
    the drain hot path: time spent inside ``sample()`` must stay under
    ``sampling_overhead_max`` of the recorder-on drain time."""
    failures = []
    cpus = current.get("host_cpus") or 1
    multi_cpu = cpus > 1
    has_ladder = len(current.get("worker_ladder", ())) > 1
    for record in current["specs"]:
        drain = record.get("drain", {})
        if record["spec"] == GATED_SPEC and drain.get("speedup", 0.0) < vector_floor:
            failures.append(
                f"{record['spec']}: drain speedup "
                f"{drain.get('speedup', 0.0):.2f}x below the "
                f"{vector_floor:.1f}x floor (host_cpus={cpus})"
            )
        overhead = drain.get("sampling_overhead_fraction", 0.0)
        if record["spec"] == GATED_SPEC and overhead > sampling_overhead_max:
            failures.append(
                f"{record['spec']}: time-series sampling overhead "
                f"{overhead:.1%} of drain time exceeds the "
                f"{sampling_overhead_max:.0%} budget"
            )
        if multi_cpu and has_ladder and record["best_speedup"] < parallel_floor:
            failures.append(
                f"{record['spec']}: best parallel speedup "
                f"{record['best_speedup']:.2f}x below the "
                f"{parallel_floor:.1f}x floor (host_cpus={cpus})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=6000)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument(
        "--drain-rounds",
        type=int,
        default=200,
        metavar="N",
        help="drained batches per engine in the drain ladder",
    )
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on a throughput regression vs the recorded file, a "
        "drain speedup below --vector-floor, or (multi-CPU hosts only) "
        "a parallel speedup below --parallel-floor",
    )
    parser.add_argument("--regression-factor", type=float, default=2.0)
    parser.add_argument("--vector-floor", type=float, default=5.0)
    parser.add_argument("--parallel-floor", type=float, default=1.1)
    parser.add_argument(
        "--sampling-overhead-max",
        type=float,
        default=0.05,
        metavar="FRACTION",
        help="largest tolerated share of drain time spent in time-series "
        "sampling on the gated spec",
    )
    args = parser.parse_args(argv)

    previous = None
    if args.output.exists():
        previous = json.loads(args.output.read_text())

    current = run_benchmark(
        ops=args.ops,
        shards=args.shards,
        worker_ladder=tuple(args.workers),
        drain_rounds=args.drain_rounds,
    )

    status = 0
    for record in current["specs"]:
        flags = []
        if not record["deterministic"]:
            flags.append("NON-DETERMINISTIC")
        if not record["trace_deterministic"]:
            flags.append("NON-DETERMINISTIC TRACE")
        if not record["engines_identical"]:
            flags.append("ENGINE MISMATCH")
        if not record["drain"]["identical"]:
            flags.append("DRAIN MISMATCH")
        if not record["integrity_ok"]:
            flags.append("INTEGRITY FAILURES")
        if flags:
            status = 1
        flag = " ".join(flags) if flags else "ok"
        print(
            f"{record['spec']:12s} serial {record['serial_ops_per_second']:9.1f} ops/s  "
            f"drain {record['drain']['speedup']:5.2f}x  "
            f"sampling {record['drain']['sampling_overhead_fraction']:.1%}  "
            f"best {record['best_speedup']:.2f}x @ {record['best_speedup_workers']} workers  "
            f"remaps {record['remaps']:3d}  capacity {record['capacity_fraction']:.3f}  "
            f"[{flag}]"
        )
    if args.check:
        if (current.get("host_cpus") or 1) <= 1:
            print("single-CPU host: parallel-speedup gate skipped")
        failures = check_gates(
            current,
            vector_floor=args.vector_floor,
            parallel_floor=args.parallel_floor,
            sampling_overhead_max=args.sampling_overhead_max,
        )
        if previous is not None:
            guard = parallel_ladder_guard(previous, current)
            if guard is not None:
                print(f"note: {guard}")
            failures.extend(
                check_regression(previous, current, args.regression_factor)
            )
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            status = 1
    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return status


if __name__ == "__main__":
    sys.exit(main())
