"""Reduction + determinism + memory benchmark for the fleet campaign engine.

Four ladders, recorded to ``BENCH_fleet.json`` so the campaign engine's
perf trajectory is tracked from PR to PR:

* a **reduction ladder** — the shard-side reduction's headline win: the
  pickled bytes a full-``PageResult`` gather would ship across the
  process boundary versus the constant-size shard state actually
  shipped, per chunk size.  The shard is O(aggregate), so the ratio
  grows linearly with the chunk size; ``--check`` gates the ratio at the
  default chunk size on ``--reduction-floor`` (5x).
* a **memory ladder** — tracemalloc peak of a streaming campaign versus
  the same campaign scaled ``--scale-factor`` (100x) larger.  Streaming
  folds every chunk into the running aggregate, so the peak must stay
  bounded (``--memory-factor``) while the would-be result-list footprint
  grows 100x; ``--check`` gates both.
* a **digest ladder** — the campaign digest across workers 1/2/4, both
  engines, and a stop/checkpoint/resume split.  Always gated: bit-equal
  digests are the engine's correctness contract on every host.
* a **worker ladder** — streaming campaign throughput per worker count,
  with host_cpus-aware records; the parallel-speedup gate self-skips on
  single-CPU hosts (and cross-core-count ladder comparisons are refused
  via :func:`benchmarks.hostmeta.parallel_ladder_guard`).

Usage::

    PYTHONPATH=src python -m benchmarks.bench_fleet             # measure + write
    PYTHONPATH=src python -m benchmarks.bench_fleet --check     # also gate
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from benchmarks.hostmeta import host_cpus, parallel_ladder_guard
from repro.fleet import CampaignSpec, run_campaign
from repro.sim.context import ExecContext

#: default result file, at the repository root
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

#: chunk sizes the reduction ladder sweeps; the last is the gated one
REDUCTION_CHUNKS = (16, 64, 128)

#: benchmark seed (fixed: digests are compared across runs)
SEED = 2013


def _campaign_spec(
    *, pages: int, chunk_pages: int, schemes: tuple[str, ...] = ("aegis-9x61", "ecp6")
) -> CampaignSpec:
    return CampaignSpec(
        schemes=schemes,
        pages_per_scheme=pages,
        blocks_per_page=2,
        chunk_pages=chunk_pages,
    )


def _reduction_ladder(pages: int) -> dict:
    """Bytes across the process boundary: full results vs shard states."""
    runs = []
    for chunk_pages in REDUCTION_CHUNKS:
        spec = _campaign_spec(
            pages=max(pages, chunk_pages), chunk_pages=chunk_pages,
            schemes=("aegis-9x61",),
        )
        report = run_campaign(spec, ExecContext(seed=SEED, workers=1))
        runs.append(
            {
                "chunk_pages": chunk_pages,
                "pages": spec.pages_per_scheme,
                "result_bytes": report.aggregate.result_bytes,
                "shard_bytes": report.aggregate.shard_bytes,
                "reduction": round(report.reduction_ratio, 3),
            }
        )
    gated = runs[-1]
    return {
        "runs": runs,
        "gated_chunk_pages": gated["chunk_pages"],
        "gated_reduction": gated["reduction"],
    }


def _memory_ladder(base_pages: int, scale_factor: int) -> dict:
    """Streaming peak memory: base campaign vs a ``scale_factor``x one."""

    def peak_of(pages: int) -> tuple[int, dict]:
        spec = _campaign_spec(pages=pages, chunk_pages=16, schemes=("aegis-9x61",))
        tracemalloc.start()
        report = run_campaign(spec, ExecContext(seed=SEED, workers=1))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak, {
            "pages": pages,
            "peak_bytes": peak,
            "result_bytes": report.aggregate.result_bytes,
        }

    base_peak, base = peak_of(base_pages)
    big_peak, big = peak_of(base_pages * scale_factor)
    return {
        "scale_factor": scale_factor,
        "base": base,
        "scaled": big,
        "peak_growth": round(big_peak / base_peak, 3) if base_peak else 0.0,
        # the result-list path's footprint is O(pages): it grows with the
        # campaign while the streaming peak stays bounded
        "result_list_growth": (
            round(big["result_bytes"] / base["result_bytes"], 3)
            if base["result_bytes"]
            else 0.0
        ),
    }


def _digest_ladder(pages: int, tmp_dir: Path) -> dict:
    """Campaign digests across workers, engines, and kill/resume."""
    spec = _campaign_spec(pages=pages, chunk_pages=8)
    runs = []
    for label, ctx in (
        ("workers=1", ExecContext(seed=SEED, workers=1)),
        ("workers=2", ExecContext(seed=SEED, workers=2)),
        ("workers=4", ExecContext(seed=SEED, workers=4)),
        ("engine=scalar", ExecContext(seed=SEED, workers=1, engine="scalar")),
        ("engine=vector", ExecContext(seed=SEED, workers=1, engine="vector")),
    ):
        report = run_campaign(spec, ctx)
        runs.append({"run": label, "digest": report.digest})
    # kill/resume drill: stop mid-campaign at a checkpoint, resume with a
    # different worker count, and require the same digest
    checkpoint = tmp_dir / "bench_fleet_checkpoint.jsonl"
    run_campaign(
        spec,
        ExecContext(seed=SEED, workers=2),
        checkpoint_path=str(checkpoint),
        checkpoint_interval=2,
        stop_after_chunks=3,
    )
    resumed = run_campaign(
        spec,
        ExecContext(seed=SEED, workers=1),
        checkpoint_path=str(checkpoint),
        resume=True,
    )
    checkpoint.unlink(missing_ok=True)
    runs.append({"run": "kill/resume", "digest": resumed.digest})
    digests = {entry["digest"] for entry in runs}
    return {
        "pages": spec.total_pages(),
        "runs": runs,
        "identical": len(digests) == 1,
    }


def _worker_ladder(pages: int, worker_ladder: tuple[int, ...]) -> dict:
    """Streaming campaign throughput per worker count."""
    spec = _campaign_spec(pages=pages, chunk_pages=8)
    runs = []
    baseline_digest = None
    deterministic = True
    for workers in worker_ladder:
        start = time.perf_counter()
        report = run_campaign(spec, ExecContext(seed=SEED, workers=workers))
        elapsed = time.perf_counter() - start
        if baseline_digest is None:
            baseline_digest = report.digest
        elif report.digest != baseline_digest:
            deterministic = False
        runs.append(
            {
                "workers": workers,
                "seconds": round(elapsed, 4),
                "pages_per_second": round(report.pages / elapsed, 3),
            }
        )
    serial = runs[0]["pages_per_second"]
    best = max(runs, key=lambda r: r["pages_per_second"])
    return {
        "pages": spec.total_pages(),
        "runs": runs,
        "serial_pages_per_second": serial,
        "best_speedup": round(best["pages_per_second"] / serial, 3),
        "best_speedup_workers": best["workers"],
        "deterministic": deterministic,
    }


def run_benchmark(
    *,
    pages: int = 48,
    base_pages: int = 16,
    scale_factor: int = 100,
    worker_ladder: tuple[int, ...] = (1, 2, 4),
    tmp_dir: Path | None = None,
) -> dict:
    """Measure every ladder and return the record."""
    return {
        "benchmark": "fleet campaign: shard reduction + streaming + digests",
        "host_cpus": host_cpus(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "worker_ladder": list(worker_ladder),
        "reduction": _reduction_ladder(pages),
        "memory": _memory_ladder(base_pages, scale_factor),
        "digests": _digest_ladder(pages, tmp_dir or DEFAULT_OUTPUT.parent),
        "workers": _worker_ladder(pages, worker_ladder),
    }


def check_gates(
    current: dict,
    *,
    reduction_floor: float,
    memory_factor: float,
    parallel_floor: float,
) -> list[str]:
    """Gate messages (empty = healthy).

    The digest and reduction gates apply on every host; the parallel gate
    self-skips without a second core."""
    failures = []
    cpus = current.get("host_cpus") or 1
    reduction = current["reduction"]["gated_reduction"]
    if reduction < reduction_floor:
        failures.append(
            f"IPC reduction {reduction:.2f}x at chunk_pages="
            f"{current['reduction']['gated_chunk_pages']} below the "
            f"{reduction_floor:.1f}x floor"
        )
    memory = current["memory"]
    if memory["peak_growth"] > memory_factor:
        failures.append(
            f"streaming peak grew {memory['peak_growth']:.2f}x on a "
            f"{memory['scale_factor']}x campaign (bound {memory_factor:.1f}x) "
            f"— the stream is accumulating results"
        )
    if not current["digests"]["identical"]:
        digests = {entry["run"]: entry["digest"][:12] for entry in current["digests"]["runs"]}
        failures.append(f"campaign digests diverged: {digests}")
    workers = current["workers"]
    if not workers["deterministic"]:
        failures.append("worker-ladder digests diverged")
    has_ladder = len(current.get("worker_ladder", ())) > 1
    if cpus > 1 and has_ladder and workers["best_speedup"] < parallel_floor:
        failures.append(
            f"best parallel speedup {workers['best_speedup']:.2f}x below "
            f"the {parallel_floor:.1f}x floor (host_cpus={cpus})"
        )
    return failures


def check_regression(previous: dict, current: dict, factor: float) -> list[str]:
    """Throughput/reduction regression vs the recorded file."""
    failures = []
    cpus = current.get("host_cpus") or host_cpus()
    old_rate = previous.get("workers", {}).get("serial_pages_per_second", 0.0)
    new_rate = current["workers"]["serial_pages_per_second"]
    if old_rate > 0 and new_rate * factor < old_rate:
        failures.append(
            f"serial campaign throughput fell from {old_rate:.2f} to "
            f"{new_rate:.2f} pages/s (> {factor:.1f}x regression, "
            f"host_cpus={cpus})"
        )
    old_reduction = previous.get("reduction", {}).get("gated_reduction", 0.0)
    new_reduction = current["reduction"]["gated_reduction"]
    if old_reduction > 0 and new_reduction * factor < old_reduction:
        failures.append(
            f"IPC reduction fell from {old_reduction:.2f}x to "
            f"{new_reduction:.2f}x (> {factor:.1f}x regression)"
        )
    if parallel_ladder_guard(previous, current) is None and cpus > 1:
        old_speedup = previous.get("workers", {}).get("best_speedup", 0.0)
        new_speedup = current["workers"]["best_speedup"]
        if old_speedup > 1.0 and new_speedup * factor < old_speedup:
            failures.append(
                f"best parallel speedup fell from {old_speedup:.2f}x to "
                f"{new_speedup:.2f}x (> {factor:.1f}x regression, "
                f"host_cpus={cpus})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pages", type=int, default=48, help="pages per scheme")
    parser.add_argument(
        "--base-pages", type=int, default=16,
        help="memory-ladder base campaign size (scaled by --scale-factor)",
    )
    parser.add_argument(
        "--scale-factor", type=int, default=100,
        help="memory-ladder scale multiple (the ISSUE's 100x campaign)",
    )
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on a reduction ratio below --reduction-floor, unbounded "
        "streaming memory, digest divergence, or a throughput regression "
        "vs the recorded file",
    )
    parser.add_argument("--regression-factor", type=float, default=2.0)
    parser.add_argument("--reduction-floor", type=float, default=5.0)
    parser.add_argument("--memory-factor", type=float, default=3.0)
    parser.add_argument("--parallel-floor", type=float, default=1.1)
    args = parser.parse_args(argv)

    previous = None
    if args.output.exists():
        previous = json.loads(args.output.read_text())

    current = run_benchmark(
        pages=args.pages,
        base_pages=args.base_pages,
        scale_factor=args.scale_factor,
        worker_ladder=tuple(args.workers),
        tmp_dir=args.output.parent,
    )

    reduction = current["reduction"]
    print(
        "reduction: "
        + "  ".join(
            f"chunk {run['chunk_pages']:3d} -> {run['reduction']:.1f}x"
            for run in reduction["runs"]
        )
    )
    memory = current["memory"]
    print(
        f"memory: peak {memory['base']['peak_bytes']:,} B -> "
        f"{memory['scaled']['peak_bytes']:,} B on a "
        f"{memory['scale_factor']}x campaign "
        f"({memory['peak_growth']:.2f}x growth vs "
        f"{memory['result_list_growth']:.0f}x result-list growth)"
    )
    digests = current["digests"]
    print(
        f"digests: {len(digests['runs'])} runs "
        f"[{'identical' if digests['identical'] else 'DIVERGED'}]"
    )
    workers = current["workers"]
    flag = "ok" if workers["deterministic"] else "NON-DETERMINISTIC"
    print(
        f"workers: serial {workers['serial_pages_per_second']:8.2f} pages/s  "
        f"best {workers['best_speedup']:.2f}x @ "
        f"{workers['best_speedup_workers']} workers  [{flag}]"
    )

    status = 0
    if not digests["identical"] or not workers["deterministic"]:
        status = 1
    if args.check:
        if (current.get("host_cpus") or 1) <= 1:
            print("single-CPU host: parallel-speedup gate skipped")
        failures = check_gates(
            current,
            reduction_floor=args.reduction_floor,
            memory_factor=args.memory_factor,
            parallel_floor=args.parallel_floor,
        )
        if previous is not None:
            guard = parallel_ladder_guard(previous, current)
            if guard is not None:
                print(f"note: {guard}")
            failures.extend(
                check_regression(previous, current, args.regression_factor)
            )
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            status = 1
    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return status


if __name__ == "__main__":
    sys.exit(main())
