"""Benchmark: regenerate Figure 9 (device survival / half lifetime)."""

from benchmarks.conftest import once, show
from repro.experiments import run_experiment


def test_fig9(benchmark, capsys):
    result = once(benchmark, lambda: run_experiment("fig9", n_pages=24, seed=2013))
    show(result, capsys)
    half = {
        label: float(value)
        for label, value in zip(
            result.column("Scheme"), result.column("Half lifetime (writes)")
        )
    }
    # §3.2 claims: Aegis 17x31 extends SAFER32's half lifetime, and also
    # beats SAFER32-cache; Aegis 9x61 approaches SAFER128-cache
    assert half["Aegis 17x31"] > half["SAFER32"]
    assert half["Aegis 17x31"] > half["SAFER32-cache"]
    assert half["Aegis 9x61"] > 0.85 * half["SAFER128-cache"]
    # everything beats no protection by a wide margin
    assert half["None"] < 0.2 * half["Aegis 9x61"]
