"""Benchmark: regenerate Figure 6 (page lifetime improvement)."""

from benchmarks.conftest import once, show
from repro.experiments import run_experiment


def test_fig6(benchmark, capsys):
    result = once(benchmark, lambda: run_experiment("fig6", n_pages=16, seed=2013))
    show(result, capsys)
    improvement = dict(
        zip(result.column("Scheme"), result.column("Improvement (x)"))
    )
    # ordering claims of §3.2: every scheme above 1x; Aegis 9x61 on top;
    # and the relative Aegis-9x61-to-ECP4 gap near the paper's 1.70x
    assert all(v > 1 for v in improvement.values())
    assert improvement["Aegis 9x61"] == max(improvement.values())
    ratio = improvement["Aegis 9x61"] / improvement["ECP4"]
    assert 1.3 < ratio < 2.2  # paper: 10.7 / 6.3 = 1.70
