"""Speedup + determinism benchmark for the Monte Carlo execution layer.

Two ladders per representative spec, recorded to ``BENCH_sim.json`` so the
performance trajectory of the engine is tracked from PR to PR:

* an **engine ladder** — ``run_page_study`` at ``workers=1`` with the
  scalar checker loop vs the batch kernels (:mod:`repro.sim.kernels`),
  plus a ``failure_curve`` timing for kernel-capable specs; asserts the
  two engines agree bit for bit;
* a **worker ladder** — the ``engine="auto"`` study fanned out over a
  process pool, asserting every worker count reproduces the serial study;
* an **extension ladder** — the pairing study (representative of the
  sims migrated onto :class:`~repro.sim.parallel.StudyRunner`) serial vs
  4 workers, asserting the fan-out is bit-identical and recording its
  speedup.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_sim               # measure + write
    PYTHONPATH=src python -m benchmarks.bench_sim --check       # also gate
    PYTHONPATH=src python -m benchmarks.bench_sim --pages 64 --workers 1 2 4

``--check`` enforces three gates:

* serial (auto-engine) per-page throughput per spec must not have fallen
  by more than ``--regression-factor`` vs the recorded file;
* the kernel speedup on ``aegis-9x61`` must reach ``--kernel-floor``
  (default 3.0) — the vector path is the perf contract of this layer;
* when the host has more than one CPU, the best parallel speedup per
  spec must reach ``--parallel-floor``; on single-CPU hosts this
  assertion is skipped (a process pool cannot beat serial there);
* when the host has at least four CPUs, the extension ladder's 4-worker
  speedup must reach ``--ext-parallel-floor`` (default 2.0) — the
  StudyRunner migration's perf contract.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from benchmarks.hostmeta import host_cpus, parallel_ladder_guard
from repro.pairing.sim import pairing_study
from repro.sim import kernels
from repro.sim.block_sim import failure_curve
from repro.sim.context import ExecContext
from repro.sim.page_sim import PageStudy, run_page_study
from repro.sim.roster import SchemeSpec, aegis_spec, ecp_spec, safer_spec

#: default result file, at the repository root
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: representative roster: one static partition scheme (the Figure 5
#: headliner), one replayed-vector scheme, one trivial checker
BENCH_SPECS = (
    ("aegis-9x61", lambda: aegis_spec(9, 61, 512)),
    ("safer64", lambda: safer_spec(64, 512)),
    ("ecp6", lambda: ecp_spec(6, 512)),
)

#: the spec whose kernel speedup --check gates on
GATED_SPEC = "aegis-9x61"


def _study(
    spec: SchemeSpec,
    n_pages: int,
    blocks_per_page: int,
    workers: int,
    engine: str,
) -> tuple[PageStudy, float]:
    start = time.perf_counter()
    study = run_page_study(
        spec,
        n_pages=n_pages,
        blocks_per_page=blocks_per_page,
        seed=2013,
        workers=workers,
        engine=engine,
    )
    return study, time.perf_counter() - start


def _curve_ladder(spec: SchemeSpec, trials: int) -> dict:
    start = time.perf_counter()
    scalar = failure_curve(spec, trials=trials, seed=2013, engine="scalar")
    scalar_seconds = time.perf_counter() - start
    start = time.perf_counter()
    vector = failure_curve(spec, trials=trials, seed=2013, engine="vector")
    vector_seconds = time.perf_counter() - start
    return {
        "trials": trials,
        "scalar_seconds": round(scalar_seconds, 4),
        "vector_seconds": round(vector_seconds, 4),
        "speedup": round(scalar_seconds / vector_seconds, 3),
        "identical": scalar == vector,
    }


def _extension_ladder(
    n_pages: int, worker_ladder: tuple[int, ...]
) -> dict:
    """Serial-vs-pooled pairing study: the StudyRunner migration's ladder."""
    spec = aegis_spec(17, 31, 512)
    runs = []
    baseline = None
    deterministic = True
    for workers in worker_ladder:
        start = time.perf_counter()
        study = pairing_study(
            spec,
            n_pages=n_pages,
            blocks_per_page=8,
            ctx=ExecContext(seed=2013, workers=workers),
        )
        elapsed = time.perf_counter() - start
        if baseline is None:
            baseline = study
        elif study != baseline:
            deterministic = False
        runs.append(
            {
                "workers": workers,
                "seconds": round(elapsed, 4),
                "pages_per_second": round(n_pages / elapsed, 3),
            }
        )
    serial = runs[0]["pages_per_second"]
    best = max(runs, key=lambda r: r["pages_per_second"])
    return {
        "study": "pairing",
        "spec": spec.key,
        "pages": n_pages,
        "runs": runs,
        "serial_pages_per_second": serial,
        "best_speedup": round(best["pages_per_second"] / serial, 3),
        "best_speedup_workers": best["workers"],
        "deterministic": deterministic,
    }


def run_benchmark(
    *,
    n_pages: int = 32,
    blocks_per_page: int = 32,
    worker_ladder: tuple[int, ...] = (1, 2, 4),
    curve_trials: int = 400,
) -> dict:
    """Measure both ladders and verify determinism; return the record."""
    records = []
    for key, make_spec in BENCH_SPECS:
        spec = make_spec()
        has_kernel = kernels.kernel_supported(spec)
        deterministic = True

        # engine ladder at workers=1: the kernel-vs-scalar contract
        scalar_study, scalar_seconds = _study(
            spec, n_pages, blocks_per_page, 1, "scalar"
        )
        vector_study, vector_seconds = _study(
            spec, n_pages, blocks_per_page, 1, "vector"
        )
        if vector_study.results != scalar_study.results:
            deterministic = False
        engine_runs = [
            {
                "engine": "scalar",
                "workers": 1,
                "seconds": round(scalar_seconds, 4),
                "pages_per_second": round(n_pages / scalar_seconds, 3),
            },
            {
                "engine": "vector",
                "workers": 1,
                "seconds": round(vector_seconds, 4),
                "pages_per_second": round(n_pages / vector_seconds, 3),
            },
        ]

        # worker ladder with the default engine selection
        runs = []
        for workers in worker_ladder:
            study, elapsed = _study(spec, n_pages, blocks_per_page, workers, "auto")
            if study.results != scalar_study.results:
                deterministic = False
            runs.append(
                {
                    "workers": workers,
                    "engine": "auto",
                    "seconds": round(elapsed, 4),
                    "pages_per_second": round(n_pages / elapsed, 3),
                }
            )
        serial = runs[0]["pages_per_second"]
        best = max(runs, key=lambda r: r["pages_per_second"])
        record = {
            "spec": key,
            "pages": n_pages,
            "blocks_per_page": blocks_per_page,
            "kernel": has_kernel,
            "engine_runs": engine_runs,
            "kernel_speedup": round(scalar_seconds / vector_seconds, 3),
            "runs": runs,
            "serial_pages_per_second": serial,
            "best_speedup": round(best["pages_per_second"] / serial, 3),
            "best_speedup_workers": best["workers"],
            "deterministic": deterministic,
        }
        if has_kernel:
            record["curve"] = _curve_ladder(spec, curve_trials)
        records.append(record)
    return {
        "benchmark": "monte carlo engine ladder + parallel fan-out",
        "host_cpus": host_cpus(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "worker_ladder": list(worker_ladder),
        "specs": records,
        "extension": _extension_ladder(n_pages, worker_ladder),
    }


def check_regression(previous: dict, current: dict, factor: float) -> list[str]:
    """Per-spec throughput/speedup regression messages (empty = healthy).

    Serial throughput is always compared.  Parallel-ladder speedups are
    compared only when both records were measured on hosts with the same
    core count (:func:`benchmarks.hostmeta.parallel_ladder_guard`);
    otherwise the comparison is refused, not silently made."""
    failures = []
    cpus = current.get("host_cpus") or host_cpus()
    ladders_comparable = parallel_ladder_guard(previous, current) is None

    def compare_parallel(label: str, old: dict, new: dict) -> None:
        old_speedup = old.get("best_speedup", 0.0)
        new_speedup = new.get("best_speedup", 0.0)
        if (
            ladders_comparable
            and cpus > 1
            and old_speedup > 1.0
            and new_speedup * factor < old_speedup
        ):
            failures.append(
                f"{label}: best parallel speedup fell from "
                f"{old_speedup:.2f}x to {new_speedup:.2f}x "
                f"(> {factor:.1f}x regression, host_cpus={cpus})"
            )

    old_by_spec = {r["spec"]: r for r in previous.get("specs", ())}
    for record in current["specs"]:
        old = old_by_spec.get(record["spec"])
        if old is None:
            continue
        old_rate = old.get("serial_pages_per_second", 0.0)
        new_rate = record["serial_pages_per_second"]
        if old_rate > 0 and new_rate * factor < old_rate:
            failures.append(
                f"{record['spec']}: serial throughput fell from "
                f"{old_rate:.2f} to {new_rate:.2f} pages/s "
                f"(> {factor:.1f}x regression, host_cpus={cpus})"
            )
        compare_parallel(record["spec"], old, record)
    old_ext = previous.get("extension")
    new_ext = current.get("extension")
    if old_ext and new_ext and old_ext.get("study") == new_ext.get("study"):
        old_rate = old_ext.get("serial_pages_per_second", 0.0)
        new_rate = new_ext["serial_pages_per_second"]
        if old_rate > 0 and new_rate * factor < old_rate:
            failures.append(
                f"extension/{new_ext['study']}: serial throughput fell from "
                f"{old_rate:.2f} to {new_rate:.2f} pages/s "
                f"(> {factor:.1f}x regression, host_cpus={cpus})"
            )
        compare_parallel(f"extension/{new_ext['study']}", old_ext, new_ext)
    return failures


def check_gates(
    current: dict,
    *,
    kernel_floor: float,
    parallel_floor: float,
    ext_parallel_floor: float = 2.0,
) -> list[str]:
    """Kernel-speedup and parallel-speedup gate messages (empty = healthy).

    The parallel gate is skipped entirely on single-CPU hosts — a process
    pool cannot beat the serial path without a second core.  The extension
    ladder's stricter floor only applies with at least four cores, since
    its contract is the 4-worker speedup."""
    failures = []
    cpus = current.get("host_cpus") or 1
    multi_cpu = cpus > 1
    has_ladder = len(current.get("worker_ladder", ())) > 1
    for record in current["specs"]:
        if record["spec"] == GATED_SPEC and record.get("kernel"):
            if record["kernel_speedup"] < kernel_floor:
                failures.append(
                    f"{record['spec']}: kernel speedup "
                    f"{record['kernel_speedup']:.2f}x below the "
                    f"{kernel_floor:.1f}x floor (host_cpus={cpus})"
                )
        if multi_cpu and has_ladder and record["best_speedup"] < parallel_floor:
            failures.append(
                f"{record['spec']}: best parallel speedup "
                f"{record['best_speedup']:.2f}x below the "
                f"{parallel_floor:.1f}x floor (host_cpus={cpus})"
            )
    extension = current.get("extension")
    if extension:
        if multi_cpu and has_ladder and extension["best_speedup"] < parallel_floor:
            failures.append(
                f"extension/{extension['study']}: best parallel speedup "
                f"{extension['best_speedup']:.2f}x below the "
                f"{parallel_floor:.1f}x floor (host_cpus={cpus})"
            )
        if cpus >= 4 and has_ladder and extension["best_speedup"] < ext_parallel_floor:
            failures.append(
                f"extension/{extension['study']}: best parallel speedup "
                f"{extension['best_speedup']:.2f}x below the "
                f"{ext_parallel_floor:.1f}x extension floor (host_cpus={cpus})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pages", type=int, default=32)
    parser.add_argument("--blocks-per-page", type=int, default=32)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--curve-trials", type=int, default=400)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on a throughput regression vs the recorded file, a "
        "kernel speedup below --kernel-floor, or (multi-CPU hosts only) "
        "a parallel speedup below --parallel-floor",
    )
    parser.add_argument("--regression-factor", type=float, default=2.0)
    parser.add_argument("--kernel-floor", type=float, default=3.0)
    parser.add_argument("--parallel-floor", type=float, default=1.1)
    parser.add_argument(
        "--ext-parallel-floor",
        type=float,
        default=2.0,
        help="minimum extension-ladder speedup, enforced only on hosts "
        "with at least 4 CPUs (the contract is the 4-worker fan-out)",
    )
    args = parser.parse_args(argv)

    previous = None
    if args.output.exists():
        previous = json.loads(args.output.read_text())

    current = run_benchmark(
        n_pages=args.pages,
        blocks_per_page=args.blocks_per_page,
        worker_ladder=tuple(args.workers),
        curve_trials=args.curve_trials,
    )

    status = 0
    for record in current["specs"]:
        flag = "ok" if record["deterministic"] else "NON-DETERMINISTIC"
        kernel = (
            f"kernel {record['kernel_speedup']:.2f}x"
            if record["kernel"]
            else "no kernel"
        )
        print(
            f"{record['spec']:12s} serial {record['serial_pages_per_second']:8.2f} pages/s  "
            f"{kernel:14s}  best {record['best_speedup']:.2f}x @ "
            f"{record['best_speedup_workers']} workers  [{flag}]"
        )
        if not record["deterministic"]:
            status = 1
    extension = current["extension"]
    ext_flag = "ok" if extension["deterministic"] else "NON-DETERMINISTIC"
    print(
        f"ext:{extension['study']:8s} serial {extension['serial_pages_per_second']:8.2f} pages/s  "
        f"{'StudyRunner':14s}  best {extension['best_speedup']:.2f}x @ "
        f"{extension['best_speedup_workers']} workers  [{ext_flag}]"
    )
    if not extension["deterministic"]:
        status = 1
    if args.check:
        if current.get("host_cpus", 1) <= 1:
            print("single-CPU host: parallel-speedup gate skipped")
        elif (current.get("host_cpus") or 1) < 4:
            print("fewer than 4 CPUs: extension 2x floor skipped")
        failures = check_gates(
            current,
            kernel_floor=args.kernel_floor,
            parallel_floor=args.parallel_floor,
            ext_parallel_floor=args.ext_parallel_floor,
        )
        if previous is not None:
            guard = parallel_ladder_guard(previous, current)
            if guard is not None:
                print(f"note: {guard}")
            failures.extend(check_regression(previous, current, args.regression_factor))
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            status = 1
    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return status


if __name__ == "__main__":
    sys.exit(main())
