"""Speedup + determinism benchmark for the parallel Monte Carlo layer.

Measures ``run_page_study`` wall-clock throughput (pages/second) at a
ladder of worker counts on a representative roster, asserts that every
worker count reproduces the serial study bit for bit, and records the
numbers to ``BENCH_sim.json`` so the performance trajectory of the engine
is tracked from PR to PR.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_sim               # measure + write
    PYTHONPATH=src python -m benchmarks.bench_sim --check       # also fail on
                                                                # >2x regression
    PYTHONPATH=src python -m benchmarks.bench_sim --pages 64 --workers 1 2 4

The regression check compares the new *serial* per-page throughput of each
benchmarked spec against the recorded one and exits non-zero when it has
fallen by more than ``--regression-factor`` (default 2.0) — loose enough to
ride out machine-to-machine noise in CI, tight enough to catch a hot-path
regression.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.sim.page_sim import PageStudy, run_page_study
from repro.sim.roster import SchemeSpec, aegis_spec, ecp_spec, safer_spec

#: default result file, at the repository root
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: representative roster: one static partition scheme (the Figure 5
#: headliner), one replayed-vector scheme, one trivial checker
BENCH_SPECS = (
    ("aegis-9x61", lambda: aegis_spec(9, 61, 512)),
    ("safer64", lambda: safer_spec(64, 512)),
    ("ecp6", lambda: ecp_spec(6, 512)),
)


def _study(spec: SchemeSpec, n_pages: int, blocks_per_page: int, workers: int) -> tuple[PageStudy, float]:
    start = time.perf_counter()
    study = run_page_study(
        spec,
        n_pages=n_pages,
        blocks_per_page=blocks_per_page,
        seed=2013,
        workers=workers,
    )
    return study, time.perf_counter() - start


def run_benchmark(
    *,
    n_pages: int = 32,
    blocks_per_page: int = 16,
    worker_ladder: tuple[int, ...] = (1, 2, 4),
) -> dict:
    """Measure throughput and verify determinism; return the record."""
    records = []
    for key, make_spec in BENCH_SPECS:
        spec = make_spec()
        runs = []
        reference: PageStudy | None = None
        deterministic = True
        for workers in worker_ladder:
            study, elapsed = _study(spec, n_pages, blocks_per_page, workers)
            if reference is None:
                reference = study
            elif study.results != reference.results:
                deterministic = False
            runs.append(
                {
                    "workers": workers,
                    "seconds": round(elapsed, 4),
                    "pages_per_second": round(n_pages / elapsed, 3),
                }
            )
        serial = runs[0]["pages_per_second"]
        best = max(runs, key=lambda r: r["pages_per_second"])
        records.append(
            {
                "spec": key,
                "pages": n_pages,
                "blocks_per_page": blocks_per_page,
                "runs": runs,
                "serial_pages_per_second": serial,
                "best_speedup": round(best["pages_per_second"] / serial, 3),
                "best_speedup_workers": best["workers"],
                "deterministic": deterministic,
            }
        )
    return {
        "benchmark": "run_page_study parallel fan-out",
        "host_cpus": os.cpu_count(),
        "python": platform.python_version(),
        "worker_ladder": list(worker_ladder),
        "specs": records,
    }


def check_regression(
    previous: dict, current: dict, factor: float
) -> list[str]:
    """Per-spec serial-throughput regression messages (empty = healthy)."""
    failures = []
    old_by_spec = {r["spec"]: r for r in previous.get("specs", ())}
    for record in current["specs"]:
        old = old_by_spec.get(record["spec"])
        if old is None:
            continue
        old_rate = old.get("serial_pages_per_second", 0.0)
        new_rate = record["serial_pages_per_second"]
        if old_rate > 0 and new_rate * factor < old_rate:
            failures.append(
                f"{record['spec']}: serial throughput fell from "
                f"{old_rate:.2f} to {new_rate:.2f} pages/s "
                f"(> {factor:.1f}x regression)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pages", type=int, default=32)
    parser.add_argument("--blocks-per-page", type=int, default=16)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when serial throughput regressed vs the recorded file",
    )
    parser.add_argument("--regression-factor", type=float, default=2.0)
    args = parser.parse_args(argv)

    previous = None
    if args.output.exists():
        previous = json.loads(args.output.read_text())

    current = run_benchmark(
        n_pages=args.pages,
        blocks_per_page=args.blocks_per_page,
        worker_ladder=tuple(args.workers),
    )

    status = 0
    for record in current["specs"]:
        flag = "ok" if record["deterministic"] else "NON-DETERMINISTIC"
        print(
            f"{record['spec']:12s} serial {record['serial_pages_per_second']:8.2f} pages/s  "
            f"best {record['best_speedup']:.2f}x @ {record['best_speedup_workers']} workers  "
            f"[{flag}]"
        )
        if not record["deterministic"]:
            status = 1
    if args.check and previous is not None:
        failures = check_regression(previous, current, args.regression_factor)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            status = 1
    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return status


if __name__ == "__main__":
    sys.exit(main())
