"""Throughput + determinism benchmark for the multi-tenant cluster layer.

Drives ``run_cluster_bench`` — the deterministic multi-tenant load
harness behind ``repro cluster-bench`` — per representative spec, with a
mid-run degrade drill so every record exercises the live-migration path.
Three contracts are asserted and recorded to ``BENCH_cluster.json``:

* **worker invariance** — the audit digest and snapshot digest must be
  bit-identical across the worker ladder (stream pre-generation is the
  only parallel stage; the drive loop is clocked by the schedule);
* **engine invariance** — scalar and vector drains must produce the
  identical digests;
* **audit integrity** — zero read-after-write audit failures even though
  one array is drained mid-run and its keys live-migrate.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_cluster            # measure + write
    PYTHONPATH=src python -m benchmarks.bench_cluster --check    # also gate
    PYTHONPATH=src python -m benchmarks.bench_cluster --ops 800 --workers 1 2

``--check`` enforces the serial-throughput regression factor vs the
recorded file and (multi-CPU hosts only, same core count as the record —
see :mod:`benchmarks.hostmeta`) the parallel-speedup comparison.
Determinism and audit failures always flag, gate or not.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from benchmarks.hostmeta import host_cpus, parallel_ladder_guard
from repro.cluster import run_cluster_bench
from repro.pcm.lifetime import NormalLifetime
from repro.sim.roster import aegis_spec, ecp_spec, safer_spec

#: default result file, at the repository root
DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"

#: representative roster: the Figure 5 headliner, a replayed-vector
#: scheme, and the cheapest pointer scheme
BENCH_SPECS = (
    ("aegis-9x61", lambda: aegis_spec(9, 61, 512)),
    ("safer64", lambda: safer_spec(64, 512)),
    ("ecp6", lambda: ecp_spec(6, 512)),
)

#: endurance that makes wear (remaps, key loss) visible within the run
ENDURANCE = 30.0


def _run(spec, *, ops: int, workers: int, engine: str, degrade_at: int):
    start = time.perf_counter()
    report = run_cluster_bench(
        spec,
        ops=ops,
        n_arrays=3,
        tenants=4,
        seed=2013,
        tenant_addresses=24,
        n_addresses=48,
        spares=12,
        lifetime_model=NormalLifetime(mean_lifetime=ENDURANCE),
        degrade_at=degrade_at,
        degrade_array=1,
        engine=engine,
        workers=workers,
    )
    return report, time.perf_counter() - start


def run_benchmark(
    *,
    ops: int = 1200,
    worker_ladder: tuple[int, ...] = (1, 2),
) -> dict:
    """Measure the cluster harness per spec and verify the digests."""
    degrade_at = ops // 2
    records = []
    for key, make_spec in BENCH_SPECS:
        spec = make_spec()

        serial, serial_seconds = _run(
            spec, ops=ops, workers=1, engine="auto", degrade_at=degrade_at
        )
        scalar, scalar_seconds = _run(
            spec, ops=ops, workers=1, engine="scalar", degrade_at=degrade_at
        )
        engines_identical = (
            scalar.audit_digest == serial.audit_digest
            and scalar.snapshot_digest == serial.snapshot_digest
        )

        runs = [
            {
                "workers": 1,
                "seconds": round(serial_seconds, 4),
                "ops_per_second": round(ops / serial_seconds, 3),
            }
        ]
        deterministic = True
        for workers in worker_ladder:
            if workers == 1:
                continue
            report, elapsed = _run(
                spec, ops=ops, workers=workers, engine="auto", degrade_at=degrade_at
            )
            if (
                report.audit_digest != serial.audit_digest
                or report.snapshot_digest != serial.snapshot_digest
            ):
                deterministic = False
            runs.append(
                {
                    "workers": workers,
                    "seconds": round(elapsed, 4),
                    "ops_per_second": round(ops / elapsed, 3),
                }
            )
        serial_rate = runs[0]["ops_per_second"]
        best = max(runs, key=lambda r: r["ops_per_second"])

        metrics = serial.telemetry.metrics
        interactive_bp = metrics.counter_total(
            "tenant_backpressure_total", qos="interactive"
        )
        records.append(
            {
                "spec": key,
                "ops": ops,
                "engine_speedup": round(scalar_seconds / serial_seconds, 3),
                "engines_identical": engines_identical,
                "runs": runs,
                "serial_ops_per_second": serial_rate,
                "best_speedup": round(best["ops_per_second"] / serial_rate, 3),
                "best_speedup_workers": best["workers"],
                "deterministic": deterministic,
                "audit_checked": serial.audit_checked,
                "audit_failures": serial.audit_failures,
                "dead_keys": serial.dead_keys,
                "retries": serial.retries,
                "forced_writes": serial.forced_writes,
                "interactive_backpressure": int(interactive_bp),
                "migrations": int(
                    metrics.counter_total("migrations_total", kind="cross_array")
                ),
                "audit_digest": serial.audit_digest,
                "snapshot_digest": serial.snapshot_digest,
            }
        )
    return {
        "benchmark": "multi-tenant cluster harness + live migration drill",
        "host_cpus": host_cpus(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "worker_ladder": list(worker_ladder),
        "endurance": ENDURANCE,
        "specs": records,
    }


def check_regression(previous: dict, current: dict, factor: float) -> list[str]:
    """Per-spec throughput/speedup regression messages (empty = healthy).

    Serial throughput is always compared.  Parallel-ladder speedups are
    compared only when both records were measured on hosts with the same
    core count (:func:`benchmarks.hostmeta.parallel_ladder_guard`);
    otherwise the comparison is refused, not silently made."""
    failures = []
    cpus = current.get("host_cpus") or host_cpus()
    ladders_comparable = parallel_ladder_guard(previous, current) is None
    old_by_spec = {r["spec"]: r for r in previous.get("specs", ())}
    for record in current["specs"]:
        old = old_by_spec.get(record["spec"])
        if old is None:
            continue
        old_rate = old.get("serial_ops_per_second", 0.0)
        new_rate = record["serial_ops_per_second"]
        if old_rate > 0 and new_rate * factor < old_rate:
            failures.append(
                f"{record['spec']}: serial throughput fell from "
                f"{old_rate:.2f} to {new_rate:.2f} ops/s "
                f"(> {factor:.1f}x regression, host_cpus={cpus})"
            )
        old_speedup = old.get("best_speedup", 0.0)
        new_speedup = record["best_speedup"]
        if (
            ladders_comparable
            and cpus > 1
            and old_speedup > 1.0
            and new_speedup * factor < old_speedup
        ):
            failures.append(
                f"{record['spec']}: best parallel speedup fell from "
                f"{old_speedup:.2f}x to {new_speedup:.2f}x "
                f"(> {factor:.1f}x regression, host_cpus={cpus})"
            )
    return failures


def check_gates(current: dict) -> list[str]:
    """Correctness gate messages (empty = healthy).

    These are host-independent: digests must agree across workers and
    engines, the audit must be clean, and interactive tenants must never
    have been backpressured."""
    failures = []
    cpus = current.get("host_cpus") or 1
    for record in current["specs"]:
        if not record["deterministic"]:
            failures.append(
                f"{record['spec']}: digests differ across the worker ladder "
                f"(host_cpus={cpus})"
            )
        if not record["engines_identical"]:
            failures.append(
                f"{record['spec']}: digests differ across engines "
                f"(host_cpus={cpus})"
            )
        if record["audit_failures"]:
            failures.append(
                f"{record['spec']}: {record['audit_failures']} read-after-write "
                f"audit failures (host_cpus={cpus})"
            )
        if record["interactive_backpressure"]:
            failures.append(
                f"{record['spec']}: interactive tenants saw "
                f"{record['interactive_backpressure']} backpressure refusals "
                f"(host_cpus={cpus})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=1200)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on a throughput regression vs the recorded file or any "
        "correctness-gate violation (digest mismatch, audit failure, "
        "interactive backpressure)",
    )
    parser.add_argument("--regression-factor", type=float, default=2.0)
    args = parser.parse_args(argv)

    previous = None
    if args.output.exists():
        previous = json.loads(args.output.read_text())

    current = run_benchmark(ops=args.ops, worker_ladder=tuple(args.workers))

    status = 0
    for record in current["specs"]:
        flags = []
        if not record["deterministic"]:
            flags.append("NON-DETERMINISTIC")
        if not record["engines_identical"]:
            flags.append("ENGINE MISMATCH")
        if record["audit_failures"]:
            flags.append("AUDIT FAILURES")
        if flags:
            status = 1
        flag = " ".join(flags) if flags else "ok"
        print(
            f"{record['spec']:12s} serial {record['serial_ops_per_second']:8.1f} ops/s  "
            f"engine {record['engine_speedup']:5.2f}x  "
            f"best {record['best_speedup']:.2f}x @ {record['best_speedup_workers']} workers  "
            f"migrations {record['migrations']:3d}  lost {record['dead_keys']:2d}  "
            f"[{flag}]"
        )
    if args.check:
        if (current.get("host_cpus") or 1) <= 1:
            print("single-CPU host: parallel-speedup comparison skipped")
        failures = check_gates(current)
        if previous is not None:
            guard = parallel_ladder_guard(previous, current)
            if guard is not None:
                print(f"note: {guard}")
            failures.extend(check_regression(previous, current, args.regression_factor))
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            status = 1
    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return status


if __name__ == "__main__":
    sys.exit(main())
