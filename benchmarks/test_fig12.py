"""Benchmark: regenerate Figure 12 (variant lifetime improvement)."""

from benchmarks.conftest import once, show
from repro.experiments import run_experiment


def test_fig12(benchmark, capsys):
    result = once(benchmark, lambda: run_experiment("fig12", n_pages=16, seed=2013))
    show(result, capsys)
    improvement = dict(
        zip(result.column("Scheme"), result.column("Improvement (x)"))
    )
    for a, b in ((23, 23), (17, 31), (9, 61), (8, 71)):
        # §3.3: Aegis-rw produces the largest lifetime improvement, and
        # Aegis-rw-p consistently beats plain Aegis (it removes the extra
        # inversion writes)
        assert improvement[f"Aegis-rw {a}x{b}"] >= improvement[f"Aegis {a}x{b}"]
    rwp_labels = [k for k in improvement if k.startswith("Aegis-rw-p")]
    for label in rwp_labels:
        formation = label.split()[1]
        assert improvement[label] >= improvement[f"Aegis {formation}"] * 0.98
