"""Benchmark: regenerate Figure 11 (variant fault tolerance)."""

from benchmarks.conftest import once, show
from repro.experiments import run_experiment


def test_fig11(benchmark, capsys):
    result = once(benchmark, lambda: run_experiment("fig11", n_pages=16, seed=2013))
    show(result, capsys)
    faults = dict(zip(result.column("Scheme"), result.column("Faults/page")))
    # §3.3: Aegis-rw beats plain Aegis for every formation (paper gains:
    # +52%/+41%/+33%/+28%), and the gain shrinks as B grows
    gains = []
    for a, b in ((23, 23), (17, 31), (9, 61), (8, 71)):
        plain = faults[f"Aegis {a}x{b}"]
        rw = faults[f"Aegis-rw {a}x{b}"]
        assert rw > plain, f"{a}x{b}"
        gains.append(rw / plain)
    assert gains[0] > gains[-1]  # 23x23 gains the most, 8x71 the least
    # §3.3: once cheaper than Aegis-rw, rw-p falls back near plain Aegis
    for (a, b, p) in ((9, 61, 9),):
        rwp = faults[f"Aegis-rw-p {a}x{b} (p={p})"]
        assert rwp < faults[f"Aegis-rw {a}x{b}"]
        assert rwp > 0.75 * faults[f"Aegis {a}x{b}"]
