"""Benchmark: regenerate Figure 7 (per-overhead-bit contribution)."""

from benchmarks.conftest import once, show
from repro.experiments import run_experiment


def test_fig7(benchmark, capsys):
    result = once(benchmark, lambda: run_experiment("fig7", n_pages=16, seed=2013))
    show(result, capsys)
    per_bit = dict(
        zip(result.column("Scheme"), result.column("Per-bit contribution"))
    )
    # the paper's claim: even the least-efficient Aegis formation (9x61,
    # the most overhead bits) out-contributes every non-Aegis scheme
    aegis_values = [v for k, v in per_bit.items() if k.startswith("Aegis")]
    other_values = [v for k, v in per_bit.items() if not k.startswith("Aegis")]
    assert min(aegis_values) > max(other_values)
